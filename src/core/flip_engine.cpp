#include "core/flip_engine.hpp"

#include <algorithm>
#include <cstring>

namespace phifi::fi {

namespace {
void copy_truncated(char* dst, std::size_t dst_size, const std::string& src) {
  const std::size_t n = std::min(dst_size - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}
}  // namespace

util::BumpArena& FlipEngine::scratch() {
  if (arena_ == nullptr) {
    // Worst case per selection: one index list over every site plus one
    // weight per site, together at most once each per inject().
    arena_ = std::make_unique<util::BumpArena>(
        registry_->size() * (sizeof(std::size_t) + sizeof(double)) + 64);
  }
  return *arena_;
}

InjectionRecord FlipEngine::inject(FaultModel model, util::Rng& rng,
                                   double progress_fraction, unsigned burst) {
  InjectionRecord record;
  record.model = model;
  record.progress_fraction = progress_fraction;
  if (registry_->size() == 0) return record;
  scratch().rewind();

  const std::size_t site_index = select_site(rng);
  const InjectionSite& site = registry_->site(site_index);
  const std::size_t element = rng.below(site.element_count());
  const std::size_t last = std::min(site.element_count(),
                                    element + std::max(1u, burst));

  FaultApplication app = apply_fault(model, site.element(element), rng);
  bool changed = app.changed;
  for (std::size_t e = element + 1; e < last; ++e) {
    changed |= apply_fault(model, site.element(e), rng).changed;
  }

  record.injected = true;
  record.changed = changed;
  record.burst_elements = static_cast<std::uint32_t>(last - element);
  record.frame = site.frame;
  record.worker = site.worker;
  record.site_index = static_cast<std::uint32_t>(site_index);
  record.element_index = element;
  record.flipped_bits[0] = app.flipped_bits[0];
  record.flipped_bits[1] = app.flipped_bits[1];
  record.flipped_count = static_cast<std::uint32_t>(app.flipped_count);
  copy_truncated(record.site_name, sizeof(record.site_name), site.name);
  copy_truncated(record.category, sizeof(record.category), site.category);
  return record;
}

std::size_t FlipEngine::select_site(util::Rng& rng) {
  switch (policy_) {
    case SelectionPolicy::kCarolFi: return select_carol_fi(rng);
    case SelectionPolicy::kBytesWeighted: return select_bytes_weighted(rng);
    case SelectionPolicy::kGlobalBytesWeighted:
      return select_bytes_weighted(rng, /*global_only=*/true);
    case SelectionPolicy::kWorkerFrameOnly: return select_worker_frame(rng);
  }
  return 0;
}

std::size_t FlipEngine::select_carol_fi(util::Rng& rng) {
  const std::size_t workers = registry_->worker_frame_count();
  // Pick a thread; every thread's call stack ends at the outer frame with
  // the globals, so each pick offers two frames: thread-local and global.
  const auto indices = scratch().allocate_span<std::size_t>(registry_->size());
  std::span<const std::size_t> frame;
  if (workers > 0 && rng.bernoulli(0.5)) {
    const int worker = static_cast<int>(rng.below(workers));
    frame = indices.first(
        registry_->frame_sites_into(FrameKind::kWorker, worker, indices));
  }
  if (frame.empty()) {
    frame = indices.first(
        registry_->frame_sites_into(FrameKind::kGlobal, -1, indices));
  }
  if (frame.empty()) {
    // Degenerate registry (e.g. worker frames only): fall back to anything.
    return select_bytes_weighted(rng);
  }
  // Variable within the frame. Two effects pull in opposite directions:
  // GDB's Flip-script picks uniformly from the frame's variable *list*, so
  // an 8-byte pointer is as likely a victim as a megabyte array (the paper's
  // control/constant criticality); yet the paper also reasons that larger
  // arrays are likelier victims (LavaMD, Sec. 6) because big data is spread
  // over many allocations. A 50/50 mixture of variable-uniform and
  // bytes-weighted selection models both; the ablation bench varies it.
  if (rng.bernoulli(0.5)) {
    return frame[rng.below(frame.size())];
  }
  const auto weights = scratch().allocate_span<double>(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    weights[i] = static_cast<double>(registry_->site(frame[i]).bytes);
  }
  return frame[rng.weighted_index(weights)];
}

std::size_t FlipEngine::select_bytes_weighted(util::Rng& rng,
                                              bool global_only) {
  const auto weights = scratch().allocate_span<double>(registry_->size());
  std::size_t i = 0;
  for (const InjectionSite& site : registry_->sites()) {
    const bool eligible =
        !global_only || site.frame == FrameKind::kGlobal;
    weights[i++] = eligible ? static_cast<double>(site.bytes) : 0.0;
  }
  return rng.weighted_index(weights);
}

std::size_t FlipEngine::select_worker_frame(util::Rng& rng) {
  const std::size_t workers = registry_->worker_frame_count();
  if (workers == 0) return select_bytes_weighted(rng);
  const int worker = static_cast<int>(rng.below(workers));
  const auto indices = scratch().allocate_span<std::size_t>(registry_->size());
  const auto frame = indices.first(
      registry_->frame_sites_into(FrameKind::kWorker, worker, indices));
  if (frame.empty()) return select_bytes_weighted(rng);
  return frame[rng.below(frame.size())];
}

}  // namespace phifi::fi

// Parent/child result channel for forked fault-injection trials.
//
// The supervisor forks each trial so crashes and hangs (DUEs) cannot poison
// the campaign process. The child reports the injection record and the
// program output through an anonymous shared mmap created before the fork;
// the parent reads it after reaping the child. A record-ready flag is set
// *before* the fault is applied so that even a trial that crashes
// microseconds after the flip still tells the parent what was corrupted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/flip_engine.hpp"

namespace phifi::fi {

/// One workload phase transition reported by the trial child. Fixed-size
/// POD so it can live in the shared mapping.
// phicheck:shm-pod phifi::fi::PhaseRecord size=40
struct PhaseRecord {
  char name[24] = {};
  double fraction = 0.0;   ///< execution progress at the transition
  double t_seconds = 0.0;  ///< monotonic seconds from child start
};

/// Fixed capacity of the shared phase log.
inline constexpr std::size_t kShmMaxPhases = 32;

/// Layout of the anonymous shared mapping the supervisor and the forked
/// trial communicate through. Namespace-scope (not a private nested type)
/// so the phicheck-generated layout asserts can name it; nothing outside
/// SharedChannel should touch it.
// phicheck:shm-pod phifi::fi::ShmHeader size=1568 atomic
struct ShmHeader {
  std::atomic<std::uint32_t> record_ready;
  std::atomic<std::uint32_t> output_ready;
  std::atomic<std::uint64_t> heartbeat;
  std::atomic<std::uint32_t> phase_count;
  PhaseRecord phases[kShmMaxPhases];
  std::uint64_t output_size;
  InjectionRecord record;
  // ---- fork-server extension (trial fast path) ----
  // Child-side classification verdict: set once the trial child compared
  // its output against the shared golden mapping (or digest).
  std::atomic<std::uint32_t> verdict_ready;
  // Template-side completion: the template reaped its grandchild and
  // published the wait status (the campaign parent cannot waitpid a
  // grandchild).
  std::atomic<std::uint32_t> status_ready;
  // Parent->template command handshake: the command fields below are
  // published under cmd_ready before the wake byte is written to the pipe.
  std::atomic<std::uint32_t> cmd_ready;
  // Grandchild pid, published by the template right after its fork so the
  // watchdog can signal the trial process directly.
  std::atomic<std::int32_t> child_pid;
  std::uint32_t verdict;       ///< 1 = output matches golden (Masked)
  std::int32_t child_status;   ///< grandchild waitpid status
  std::uint32_t trial_valid;   ///< command carries an injected-trial config
  std::uint32_t trial_model;
  std::uint32_t trial_policy;
  std::uint32_t trial_burst;
  std::uint64_t output_digest;  ///< FNV-1a 64 of the child's output bytes
  std::uint64_t trial_seed;
  double trial_earliest;
  double trial_latest;
  /// One-time workload setup cost in the template, for trial telemetry.
  /// Written once by the template, never cleared by reset().
  double template_setup_seconds;
  // ---- per-trial phase timing (latency anatomy profiler) ----
  // Written by the trial child before it exits, cleared by reset(): how
  // much of the child's wall-clock went to workload setup, to site
  // registration + flip arming, and to in-child classification. The
  // campaign subtracts these from the reap interval to isolate the run.
  double setup_seconds;
  double inject_seconds;
  double classify_seconds;
};

/// Mirror of the supervisor's TrialConfig for the template command block
/// (the channel layer deliberately knows nothing about supervisor types).
struct TrialCommand {
  bool injected = false;  ///< false = clean (golden-comparison) trial
  std::uint64_t trial_seed = 0;
  std::uint32_t model = 0;
  std::uint32_t policy = 0;
  std::uint32_t burst = 1;
  double earliest_fraction = 0.0;
  double latest_fraction = 0.0;
};

class SharedChannel {
 public:
  /// Creates a channel able to carry `output_capacity` output bytes.
  explicit SharedChannel(std::size_t output_capacity);
  ~SharedChannel();

  SharedChannel(const SharedChannel&) = delete;
  SharedChannel& operator=(const SharedChannel&) = delete;

  /// Parent: clears all flags before forking the next trial.
  void reset();

  // ---- child side ----

  /// Publishes (or re-publishes) the injection record.
  void store_record(const InjectionRecord& record);

  /// Copies the final output and marks the trial complete.
  void store_output(std::span<const std::byte> output);

  /// Bumps the liveness heartbeat. The child calls this as it crosses
  /// execution-time windows; the watchdog reads it to tell a slow-but-alive
  /// child from a hung one.
  void beat();

  /// Appends one workload phase transition (telemetry). Silently drops
  /// transitions past the fixed capacity — phases are a handful per trial
  /// and a corrupted child looping on enter_phase must not wedge anything.
  void store_phase(std::string_view name, double fraction, double t_seconds);

  /// Publishes how the child's own wall-clock decomposed: workload setup
  /// (or warm reset), site registration + flip arming, and in-child
  /// classification, all in seconds. Plain stores — the parent reads them
  /// only after reaping, and zeros (never written) are valid.
  void store_trial_timing(double setup_seconds, double inject_seconds,
                          double classify_seconds);

  /// Fast path: publishes the child-side classification verdict. Masked
  /// trials ship only this (zero output bytes cross the channel); SDC
  /// trials additionally store_output() so the parent can analyze the
  /// corrupted bytes.
  void store_verdict(bool matches_golden, std::uint64_t digest);

  // ---- template (fork-server) side ----

  /// Reads the trial command published by store_command(). Called after
  /// the wake byte arrives on the command pipe.
  [[nodiscard]] TrialCommand load_command() const;

  /// Publishes the freshly forked grandchild's pid for the watchdog.
  void publish_child(std::int32_t pid);

  /// Publishes the grandchild's reaped wait status; this is the parent's
  /// completion signal for template-mode trials.
  void publish_status(std::int32_t status);

  /// Records the template's one-time workload setup cost (never cleared
  /// by reset(); written before the first publish_status()).
  void store_template_setup_seconds(double seconds);

  // ---- parent side ----

  /// Publishes the next trial command for the template, then returns;
  /// the caller wakes the template through the command pipe.
  void store_command(const TrialCommand& command);

  [[nodiscard]] bool verdict_ready() const;
  /// Valid only when verdict_ready(): did the output match the golden?
  [[nodiscard]] bool verdict_matches() const;
  [[nodiscard]] std::uint64_t output_digest() const;
  [[nodiscard]] bool status_ready() const;
  [[nodiscard]] std::int32_t child_status() const;
  [[nodiscard]] std::int32_t child_pid() const;
  [[nodiscard]] double template_setup_seconds() const;
  /// Child-reported phase timing, valid after reap; zero if never stored.
  [[nodiscard]] double trial_setup_seconds() const;
  [[nodiscard]] double trial_inject_seconds() const;
  [[nodiscard]] double trial_classify_seconds() const;

  [[nodiscard]] std::uint64_t heartbeat() const;
  [[nodiscard]] bool output_ready() const;
  [[nodiscard]] bool record_ready() const;
  [[nodiscard]] InjectionRecord record() const;
  [[nodiscard]] std::span<const std::byte> output() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Phase transitions the child reported, in order. Read after reaping.
  [[nodiscard]] std::vector<PhaseRecord> phases() const;

  /// Fixed capacity of the phase log.
  static constexpr std::size_t kMaxPhases = kShmMaxPhases;

 private:
  ShmHeader* header_ = nullptr;
  std::byte* payload_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t map_bytes_ = 0;
};

}  // namespace phifi::fi

// Parent/child result channel for forked fault-injection trials.
//
// The supervisor forks each trial so crashes and hangs (DUEs) cannot poison
// the campaign process. The child reports the injection record and the
// program output through an anonymous shared mmap created before the fork;
// the parent reads it after reaping the child. A record-ready flag is set
// *before* the fault is applied so that even a trial that crashes
// microseconds after the flip still tells the parent what was corrupted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/flip_engine.hpp"

namespace phifi::fi {

/// One workload phase transition reported by the trial child. Fixed-size
/// POD so it can live in the shared mapping.
// phicheck:shm-pod phifi::fi::PhaseRecord size=40
struct PhaseRecord {
  char name[24] = {};
  double fraction = 0.0;   ///< execution progress at the transition
  double t_seconds = 0.0;  ///< monotonic seconds from child start
};

/// Fixed capacity of the shared phase log.
inline constexpr std::size_t kShmMaxPhases = 32;

/// Layout of the anonymous shared mapping the supervisor and the forked
/// trial communicate through. Namespace-scope (not a private nested type)
/// so the phicheck-generated layout asserts can name it; nothing outside
/// SharedChannel should touch it.
// phicheck:shm-pod phifi::fi::ShmHeader size=1464 atomic
struct ShmHeader {
  std::atomic<std::uint32_t> record_ready;
  std::atomic<std::uint32_t> output_ready;
  std::atomic<std::uint64_t> heartbeat;
  std::atomic<std::uint32_t> phase_count;
  PhaseRecord phases[kShmMaxPhases];
  std::uint64_t output_size;
  InjectionRecord record;
};

class SharedChannel {
 public:
  /// Creates a channel able to carry `output_capacity` output bytes.
  explicit SharedChannel(std::size_t output_capacity);
  ~SharedChannel();

  SharedChannel(const SharedChannel&) = delete;
  SharedChannel& operator=(const SharedChannel&) = delete;

  /// Parent: clears all flags before forking the next trial.
  void reset();

  // ---- child side ----

  /// Publishes (or re-publishes) the injection record.
  void store_record(const InjectionRecord& record);

  /// Copies the final output and marks the trial complete.
  void store_output(std::span<const std::byte> output);

  /// Bumps the liveness heartbeat. The child calls this as it crosses
  /// execution-time windows; the watchdog reads it to tell a slow-but-alive
  /// child from a hung one.
  void beat();

  /// Appends one workload phase transition (telemetry). Silently drops
  /// transitions past the fixed capacity — phases are a handful per trial
  /// and a corrupted child looping on enter_phase must not wedge anything.
  void store_phase(std::string_view name, double fraction, double t_seconds);

  // ---- parent side ----

  [[nodiscard]] std::uint64_t heartbeat() const;
  [[nodiscard]] bool output_ready() const;
  [[nodiscard]] bool record_ready() const;
  [[nodiscard]] InjectionRecord record() const;
  [[nodiscard]] std::span<const std::byte> output() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Phase transitions the child reported, in order. Read after reaping.
  [[nodiscard]] std::vector<PhaseRecord> phases() const;

  /// Fixed capacity of the phase log.
  static constexpr std::size_t kMaxPhases = kShmMaxPhases;

 private:
  ShmHeader* header_ = nullptr;
  std::byte* payload_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t map_bytes_ = 0;
};

}  // namespace phifi::fi

// Injection sites: the program variables CAROL-FI can corrupt.
//
// CAROL-FI uses DWARF debug info to enumerate the variables of a randomly
// selected stack frame. In this in-process reproduction, each workload
// registers its variables explicitly after setup: global-frame variables
// (input/output arrays, constants) and per-logical-thread frame variables
// (the loop control slots in each worker's ControlBlock). The flip engine
// then mimics the Flip-script selection: thread -> frame -> variable ->
// element -> fault model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace phifi::fi {

/// Which frame a variable lives in, mirroring GDB's view of the program.
enum class FrameKind {
  kGlobal,  ///< outermost frame: globals / heap arrays / constants
  kWorker,  ///< a logical hardware thread's local frame (control block)
};

struct InjectionSite {
  std::string name;      ///< source-level variable name, e.g. "matrix_a"
  std::string category;  ///< analysis grouping, e.g. "matrix", "control"
  FrameKind frame = FrameKind::kGlobal;
  int worker = -1;  ///< logical worker id for kWorker sites, -1 otherwise
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  std::size_t element_size = 4;  ///< granule the fault models operate on

  [[nodiscard]] std::size_t element_count() const {
    return element_size == 0 ? 0 : bytes / element_size;
  }
  [[nodiscard]] std::span<std::byte> element(std::size_t index) const {
    return {data + index * element_size, element_size};
  }
};

/// Collects the sites of one workload instance. Lives in the trial child
/// process; pointers reference live workload memory.
class SiteRegistry {
 public:
  /// Registers a global-frame variable.
  void add_global(std::string name, std::string category,
                  std::span<std::byte> bytes, std::size_t element_size);

  /// Registers a per-worker variable (one control slot of one worker).
  void add_worker(int worker, std::string name, std::string category,
                  std::span<std::byte> bytes, std::size_t element_size);

  /// Typed convenience: registers the bytes of an array of T.
  template <typename T>
  void add_global_array(std::string name, std::string category,
                        std::span<T> values) {
    add_global(std::move(name), std::move(category),
               {reinterpret_cast<std::byte*>(values.data()),
                values.size() * sizeof(T)},
               sizeof(T));
  }

  /// Typed convenience: registers one scalar object.
  template <typename T>
  void add_global_scalar(std::string name, std::string category, T& value) {
    add_global(std::move(name), std::move(category),
               {reinterpret_cast<std::byte*>(&value), sizeof(T)}, sizeof(T));
  }

  [[nodiscard]] std::span<const InjectionSite> sites() const { return sites_; }
  [[nodiscard]] std::size_t size() const { return sites_.size(); }
  [[nodiscard]] const InjectionSite& site(std::size_t i) const {
    return sites_[i];
  }

  /// Number of distinct workers that registered worker-frame sites.
  [[nodiscard]] std::size_t worker_frame_count() const;

  /// Indices of all sites in the given frame (worker = specific id for
  /// kWorker frames; ignored for the global frame).
  [[nodiscard]] std::vector<std::size_t> frame_sites(FrameKind frame,
                                                     int worker = -1) const;

  /// Allocation-free variant for the trial hot loop: writes matching site
  /// indices into `out` (sized >= size()) and returns how many were
  /// written. Selection order matches frame_sites().
  std::size_t frame_sites_into(FrameKind frame, int worker,
                               std::span<std::size_t> out) const;

  /// Total registered bytes (for bytes-weighted selection).
  [[nodiscard]] std::size_t total_bytes() const;

  void clear() { sites_.clear(); }

 private:
  std::vector<InjectionSite> sites_;
};

}  // namespace phifi::fi

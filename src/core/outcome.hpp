// Trial outcome taxonomy (Sec. 2.1 of the paper): a transient fault is
// masked, causes Silent Data Corruption (wrong output, clean exit), or a
// Detected Uncorrectable Error (crash / hang / device reboot).
#pragma once

#include <string_view>

namespace phifi::fi {

// phicheck:exhaustive-switch — the outcome taxonomy feeds every estimator and
// report; a silently-defaulted new outcome would skew published rates.
enum class Outcome {
  kMasked,      ///< program finished, output bit-identical to golden
  kSdc,         ///< program finished, output differs
  kDue,         ///< crash, abnormal exit, or hang
  kNotInjected, ///< the run finished before the flip fired; excluded from stats
};

/// What kind of DUE was detected (all collapse to "DUE" in the paper's
/// figures; the split is logged for diagnosis).
// phicheck:exhaustive-switch
enum class DueKind {
  kNone,
  kCrash,        ///< killed by SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT
  kAbnormalExit, ///< exited with nonzero status (e.g. uncaught exception)
  kHang,         ///< exceeded the watchdog deadline and was killed
  kRlimit,       ///< hit a per-child resource limit (CPU rlimit SIGXCPU, or
                 ///< address-space rlimit surfacing as allocation failure)
  kStall,        ///< heartbeat stalled; cut before the absolute deadline
};

constexpr std::string_view to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "Masked";
    case Outcome::kSdc: return "SDC";
    case Outcome::kDue: return "DUE";
    case Outcome::kNotInjected: return "NotInjected";
  }
  return "?";
}

constexpr std::string_view to_string(DueKind kind) {
  switch (kind) {
    case DueKind::kNone: return "none";
    case DueKind::kCrash: return "crash";
    case DueKind::kAbnormalExit: return "abnormal-exit";
    case DueKind::kHang: return "hang";
    case DueKind::kRlimit: return "rlimit";
    case DueKind::kStall: return "stall";
  }
  return "?";
}

}  // namespace phifi::fi

// Trial supervisor: the Supervisor script of CAROL-FI (Sec. 5.1).
//
// For each trial it forks the process; the child rebuilds the workload,
// starts a flip thread (the Flip-script analog), runs the benchmark on the
// emulated device, and reports output + injection record through a shared-
// memory channel. The parent acts as the watchdog: it reaps the child,
// kills it past the deadline, and classifies the outcome — Masked (output
// bit-identical to the golden copy), SDC (mismatch), or DUE (crash /
// abnormal exit / hang).
//
// Trials run in *slots*: each slot owns its own SharedChannel shm segment
// and watchdog state, so a multi-worker campaign can keep several forked
// children in flight at once (start_trial/poll_slots), while the classic
// one-at-a-time API (run_trial) drives slot 0 synchronously.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/flip_engine.hpp"
#include "core/golden_map.hpp"
#include "core/outcome.hpp"
#include "core/shared_channel.hpp"
#include "core/workload_api.hpp"
#include "phi/counters.hpp"
#include "phi/device_spec.hpp"
#include "telemetry/metrics.hpp"

namespace phifi::fi {

/// How the watchdog paces its child polls.
enum class WatchdogPoll {
  /// Legacy behaviour: a fixed 200µs sleep between polls.
  kFixed,
  /// Coarse sleeps (up to 20ms) far from the expected completion time,
  /// ~20 polls across the expected runtime near it, never finer than the
  /// fixed poll. Cuts supervisor CPU (it's proportional to wakeups) while
  /// keeping reap latency bounded by the same 200µs constant.
  kAdaptive,
};

/// How a trial child comes into existence.
enum class ForkMode {
  /// Cold start: every child re-runs factory + setup + register_sites.
  kLegacy,
  /// Warm image: the campaign process keeps the post-setup workload alive
  /// (restored via Workload::reset() after the golden run) and forks trial
  /// children directly from it; COW hands each child a pristine copy.
  kWarm,
  /// Fork server: a per-slot template process pays setup once and re-forks
  /// trial grandchildren from its warm image on command.
  kTemplate,
};

[[nodiscard]] constexpr std::string_view to_string(ForkMode mode) {
  switch (mode) {
    case ForkMode::kWarm:
      return "warm";
    case ForkMode::kTemplate:
      return "template";
    case ForkMode::kLegacy:
      break;
  }
  return "legacy";
}

struct SupervisorConfig {
  /// Enables the fork-server trial fast path: golden output shared through
  /// a sealed read-only mapping, children classifying in place and shipping
  /// only a verdict, setup paid once per campaign (warm mode) or once per
  /// slot (template mode) instead of once per trial. Outcome tallies are
  /// bit-identical to the legacy path for the same seeds.
  bool trial_fast_path = false;
  /// Input-generation seed; fixed for a whole campaign so every trial runs
  /// the same computation as the golden copy.
  std::uint64_t input_seed = 0x900d5eedULL;
  /// OS threads backing the emulated device inside each trial child.
  unsigned device_os_threads = 2;
  phi::DeviceSpec device_spec = phi::DeviceSpec::knights_corner_3120a();
  /// Watchdog deadline = max(min_timeout_seconds,
  ///                         timeout_factor * golden run time).
  double timeout_factor = 25.0;
  double min_timeout_seconds = 2.0;
  WatchdogPoll poll = WatchdogPoll::kAdaptive;
  /// Overdue children get SIGTERM first; SIGKILL follows after this grace
  /// window if they have not exited (injected faults can wedge signal
  /// handling, and test workloads may ignore SIGTERM outright).
  double kill_grace_seconds = 0.25;
  /// Per-child address-space cap in MiB (0 = inherit the parent's limit).
  /// A child that exhausts it fails allocation and is classified
  /// DueKind::kRlimit instead of wedging the host under memory pressure.
  std::size_t child_address_space_mb = 0;
  /// Per-child CPU-seconds cap (0 = unlimited). The kernel delivers
  /// SIGXCPU, classified DueKind::kRlimit — a runaway child dies by rlimit
  /// even if the watchdog itself is starved.
  unsigned child_cpu_seconds = 0;
  /// Heartbeat pulses the child emits over one run (0 disables the
  /// heartbeat protocol). While the heartbeat keeps advancing, a child past
  /// the base deadline is granted extensions up to
  /// max_deadline_factor * deadline — "slow but alive" is not a hang.
  unsigned heartbeat_divisions = 16;
  double max_deadline_factor = 4.0;
  /// If > 0, a child whose heartbeat has not advanced for this many seconds
  /// is killed *before* the absolute deadline and classified
  /// DueKind::kStall. Requires heartbeat_divisions > 0.
  double stall_timeout_seconds = 0.0;
  /// Optional metrics sink (not owned; must outlive the supervisor). The
  /// watchdog feeds supervisor.poll_interval_ms and
  /// supervisor.heartbeat_gap_ms histograms plus escalation counters.
  /// nullptr disables all observation at the cost of one branch per poll.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct TrialConfig {
  std::uint64_t trial_seed = 0;  ///< drives flip randomness + injection time
  FaultModel model = FaultModel::kSingle;
  SelectionPolicy policy = SelectionPolicy::kCarolFi;
  /// Consecutive elements the fault footprint covers (1 = one variable
  /// element; the beam model uses wider bursts for vector/cache strikes).
  unsigned burst_elements = 1;
  /// Injection-time fraction is drawn uniformly from this range. Kept off
  /// the exact endpoints so the flip reliably fires while the program runs.
  double earliest_fraction = 0.01;
  double latest_fraction = 0.99;
};

struct TrialResult {
  Outcome outcome = Outcome::kNotInjected;
  DueKind due_kind = DueKind::kNone;
  InjectionRecord record;
  /// Time window the injection fell into, in [0, time_windows).
  unsigned window = 0;
  double seconds = 0.0;
  /// Heartbeat pulses observed from the child (diagnostics).
  std::uint64_t heartbeats = 0;
  /// True when the child ignored SIGTERM and had to be SIGKILLed.
  bool escalated_kill = false;
  /// How this trial's child process came into existence.
  ForkMode fork_mode = ForkMode::kLegacy;
  /// True when the trial paid no workload setup anywhere in its critical
  /// path: warm-mode trials always (setup was amortized from the golden
  /// run), template-mode trials except the one that (re)spawned the
  /// template, legacy trials never.
  bool setup_skipped = false;

  // ---- telemetry (traced, not journaled: the journal stays the compact
  //      durability record, the trace is the observability record) ----

  /// Sub-interval boundaries, seconds from trial start, monotonic:
  /// fork span = [0, fork_done), child run = [fork_done, reaped),
  /// classify = [reaped, classified).
  double fork_done_seconds = 0.0;
  double reaped_seconds = 0.0;
  double classified_seconds = 0.0;
  /// Child-reported decomposition of its own wall-clock (zeros for trials
  /// that died before reporting): workload setup/reset, site registration +
  /// flip arming, and in-child classification (fast path only). The
  /// profiler subtracts these from the reap interval to isolate the run.
  double setup_seconds = 0.0;
  double inject_seconds = 0.0;
  double classify_child_seconds = 0.0;
  /// Watchdog poll iterations while the child ran (diagnostics).
  std::uint64_t polls = 0;
  /// Workload phase transitions the child reported, in order.
  std::vector<PhaseRecord> phases;
};

/// One trial that finished (exited, crashed, or was killed) during a
/// poll_slots() pass, classified and ready to hand back.
struct SlotCompletion {
  unsigned slot = 0;
  TrialResult result;
};

class TrialSupervisor {
 public:
  TrialSupervisor(WorkloadFactory factory, SupervisorConfig config = {});
  ~TrialSupervisor();

  TrialSupervisor(const TrialSupervisor&) = delete;
  TrialSupervisor& operator=(const TrialSupervisor&) = delete;

  /// Runs the fault-free golden execution in-process and records its output
  /// and timing. Must be called before run_trial(). The emulated device is
  /// torn down afterwards so the campaign process is single-threaded when
  /// it forks.
  void prepare_golden();

  /// Fast-path alternative to prepare_golden(): adopts a golden digest
  /// recorded by an earlier run (e.g. a fabric shard journal) instead of
  /// re-running the golden execution. Output metadata is probed from a
  /// setup-less workload instance; trials run in template mode and classify
  /// by digest alone (golden bytes are not materialized, so golden() stays
  /// empty and Masked outputs are unavailable). Requires trial_fast_path.
  void adopt_golden(std::uint64_t digest, std::uint64_t output_bytes,
                    double golden_seconds);

  /// Runs one injected trial in a forked child and classifies the outcome.
  /// Synchronous convenience over slot 0; must not be mixed with in-flight
  /// async slots.
  TrialResult run_trial(const TrialConfig& config);

  /// Runs a fault-free trial through the same fork/channel machinery;
  /// used for self-checks and injector-overhead measurement.
  TrialResult run_clean_trial();

  // ---- multi-slot (parallel campaign) API ----

  /// Grows the slot pool to `count` slots, each with its own shm channel
  /// sized for the golden output. Requires prepare_golden() first; never
  /// shrinks, and never reallocates the channel of an active slot.
  void ensure_slots(unsigned count);

  [[nodiscard]] unsigned slot_count() const {
    return static_cast<unsigned>(slots_.size());
  }
  [[nodiscard]] bool slot_active(unsigned slot) const;
  /// Number of slots with a forked child currently in flight.
  [[nodiscard]] unsigned active_slots() const { return active_count_; }

  /// Forks one injected trial into a free slot. Throws std::runtime_error
  /// on fork failure (the slot stays free; the attempt can be retried).
  void start_trial(unsigned slot, const TrialConfig& config);

  /// One scheduler pass: reaps any exited children with a single
  /// EINTR-safe waitpid(-1) loop, then runs the watchdog (deadline, stall,
  /// heartbeat extension, SIGTERM→SIGKILL escalation) over the slots still
  /// running. Returns every trial that completed this pass, classified.
  std::vector<SlotCompletion> poll_slots();

  /// Suggested sleep before the next poll_slots() call: the tightest
  /// adaptive (or fixed) poll interval across the active slots.
  [[nodiscard]] std::chrono::microseconds next_poll_delay() const;

  /// Blocks until a completion event is plausible, then returns so the
  /// caller can run poll_slots() again. Fast-path slots carry an event fd
  /// (warm: the trial's exit pipe; template: the fork-server's completion
  /// byte), so the wait is a poll(2) that the kernel ends the moment the
  /// trial is done — no reap latency and, on a loaded machine, no poll
  /// wakeups competing with the child for CPU. Bounded by a 10ms tick so
  /// watchdog bookkeeping (deadlines, stall detection) keeps running.
  /// Legacy slots have no event fd and fall back to next_poll_delay()
  /// sleeping, preserving the pre-fast-path schedule exactly.
  void wait_for_completion();

  /// SIGKILLs and reaps every active slot without classifying — used to
  /// cancel speculative attempts past the campaign's finish line and to
  /// tear down on abort.
  void kill_active_slots();

  [[nodiscard]] std::span<const std::byte> golden() const { return golden_; }
  [[nodiscard]] util::Shape output_shape() const { return shape_; }
  [[nodiscard]] ElementType output_type() const { return type_; }
  [[nodiscard]] unsigned time_windows() const { return windows_; }
  [[nodiscard]] double golden_seconds() const { return golden_seconds_; }
  [[nodiscard]] std::string_view workload_name() const { return name_; }

  /// FNV-1a 64 digest of the golden output (0 until prepared/adopted).
  [[nodiscard]] std::uint64_t golden_digest() const { return golden_digest_; }
  /// Golden output size in bytes; valid in adopted mode too, where the
  /// bytes themselves are not materialized.
  [[nodiscard]] std::uint64_t golden_output_bytes() const {
    return output_capacity_;
  }
  /// True when the golden was adopted from a recorded digest.
  [[nodiscard]] bool adopted() const { return adopted_; }
  /// The fork mode trials will run in (resolved by prepare/adopt_golden).
  [[nodiscard]] ForkMode fork_mode() const { return resolved_mode_; }
  /// Times a dead template process had to be respawned mid-campaign.
  [[nodiscard]] unsigned template_respawns() const {
    return template_respawns_;
  }
  /// PID of the slot's template (fork-server) process, or -1 when none is
  /// alive. Diagnostics and the template-crash drill in tests.
  [[nodiscard]] pid_t slot_template_pid(unsigned slot) const {
    return slot < slots_.size() ? slots_[slot].template_pid : -1;
  }

  /// Shuts down idle template processes (closes their command pipes and
  /// reaps them). Called by the destructor; requires no active slots.
  void shutdown_templates();

  /// Device performance counters of the golden run (arithmetic intensity
  /// per Sec. 3.2/4.2; feeds the report and the metrics registry).
  [[nodiscard]] const phi::CounterSnapshot& golden_counters() const {
    return golden_counters_;
  }

  /// Output bytes of the most recent completed (Masked/SDC) trial in slot
  /// 0; valid until the next trial starts there.
  [[nodiscard]] std::span<const std::byte> last_output() const;

  /// Output bytes of the given slot's last completed trial; valid until
  /// the slot is reused.
  [[nodiscard]] std::span<const std::byte> slot_output(unsigned slot) const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-slot watchdog state. The channel is allocated once and reused
  /// across the trials scheduled into the slot.
  struct Slot {
    std::unique_ptr<SharedChannel> channel;
    pid_t pid = -1;
    bool active = false;
    bool injected = false;  ///< launched with an injection config
    Clock::time_point start{};
    Clock::time_point last_beat_time{};
    Clock::time_point last_poll_time{};
    std::uint64_t last_beat = 0;
    std::uint64_t polls = 0;
    double fork_done = 0.0;
    // ---- fast path ----
    ForkMode mode = ForkMode::kLegacy;  ///< mode of the in-flight trial
    pid_t template_pid = -1;  ///< fork-server process (outlives trials)
    int cmd_fd = -1;          ///< parent end of the template command pipe
    /// Warm mode: read end of a per-trial pipe whose write end lives only
    /// in the child, so child exit (any exit, including SIGKILL) reads as
    /// EOF here — an exact, kernel-delivered completion event.
    int exit_fd = -1;
    TrialCommand pending{};   ///< last dispatched command, for respawn replay
    unsigned respawn_attempts = 0;  ///< respawns charged to the current trial
    bool setup_skipped = false;     ///< the in-flight trial paid no setup
  };

  TrialResult run_child(const TrialConfig* config);
  void launch(unsigned slot, const TrialConfig* config);
  /// Reaps + classifies a finished child and frees the slot.
  TrialResult finalize_slot(Slot& slot, int status, DueKind killed_as,
                            bool escalated);
  [[noreturn]] void child_main(const TrialConfig* config,
                               SharedChannel* channel);

  // ---- fast path ----
  /// Forks a fresh template process for the slot (template mode).
  void spawn_template(unsigned slot);
  /// Ensures a live template and hands it the slot's pending command,
  /// respawning (bounded) if the template died before it could be woken.
  void dispatch_pending(unsigned slot);
  /// Watchdog kill for a template-mode trial: signals the grandchild and
  /// waits for the template to publish its status. Returns false when the
  /// grandchild does not exist yet and `force` is not set (retry next
  /// poll); with `force`, kills the whole template subtree.
  bool kill_template_trial(Slot& slot, bool force, int* status,
                           bool* escalated);
  /// Reap-pass handler for a template process that died mid-campaign.
  void handle_template_death(unsigned slot);
  /// Template process body: setup once, then loop re-forking trial
  /// grandchildren from the warm image on command.
  [[noreturn]] void template_main(SharedChannel* channel, int cmd_fd,
                                  int parent_fd);
  /// Fast-path trial body, shared by warm children and template
  /// grandchildren: inject, run, classify in place, ship the verdict.
  [[noreturn]] void fast_trial_main(Workload& workload, SiteRegistry& registry,
                                    const TrialCommand& command,
                                    SharedChannel* channel);

  WorkloadFactory factory_;
  SupervisorConfig config_;
  std::vector<std::byte> golden_;
  phi::CounterSnapshot golden_counters_;
  util::Shape shape_;
  ElementType type_ = ElementType::kF32;
  unsigned windows_ = 1;
  double golden_seconds_ = 0.0;
  std::string name_;
  std::vector<Slot> slots_;
  unsigned active_count_ = 0;
  bool prepared_ = false;
  // ---- fast path ----
  /// Warm post-setup workload image kept alive in the campaign process
  /// (warm mode only); trial children are forked straight from it.
  std::unique_ptr<Workload> warm_workload_;
  /// Site registry built once against warm_workload_; its raw pointers
  /// stay valid in every COW child.
  SiteRegistry warm_registry_;
  /// Sealed read-only shared mapping of the golden output.
  GoldenMap golden_map_;
  std::uint64_t golden_digest_ = 0;
  std::uint64_t output_capacity_ = 0;  ///< golden output bytes (both modes)
  bool adopted_ = false;
  ForkMode resolved_mode_ = ForkMode::kLegacy;
  unsigned template_respawns_ = 0;
};

}  // namespace phifi::fi

// Write-ahead campaign journal: crash durability for long campaigns.
//
// The paper's >90,000 CAROL-FI injections (Sec. 5) accumulate over hours of
// runs whose whole point is to provoke crashes and hangs; losing a campaign
// to a SIGINT or an OOM kill of the *supervisor* would throw away real
// work. The journal appends one checksummed record per trial attempt as it
// completes, fsyncing per the configured policy, so a campaign killed at
// any instant can be resumed: the header carries a fingerprint of the
// campaign configuration (workload, seed, models, policy, windows) so a
// mismatched resume is rejected, and a truncated or checksum-corrupt tail
// (the torn final write of a crash) is dropped on load, not fatal.
//
// On-disk layout (all integers little-endian):
//   magic "PHIFIJL1"
//   u32 header_size | header payload | u32 crc32(header payload)
//     header payload: u64 fingerprint, u32 time_windows,
//                     u32 name_len, name bytes
//                     [, u64 run_id — absent in pre-observability journals]
//                     [, u64 golden_digest, f64 golden_seconds,
//                        u64 golden_output_bytes — absent in pre-fast-path
//                        journals]
//   repeated records, each:
//   u32 payload_size | record payload | u32 crc32(record payload)
//     record payload: u64 attempt_index + the flattened TrialResult
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/supervisor.hpp"

namespace phifi::fi {

/// When the journal reaches the disk, not just the page cache.
enum class JournalFsync {
  kEveryRecord,  ///< fsync after each append; survives power loss
  kOnClose,      ///< fsync only on sync()/close; survives process death
  /// Group commit: fsync once every K records or T ms, whichever comes
  /// first (see JournalBatchPolicy), plus on sync()/close. Power loss can
  /// cost at most the unsynced batch; process death costs nothing (the
  /// records are already in the page cache). This keeps N parallel workers
  /// from serializing behind one fsync per trial.
  kBatch,
};

/// Group-commit knobs for JournalFsync::kBatch.
struct JournalBatchPolicy {
  std::uint64_t max_records = 64;  ///< fsync after this many appends
  double max_delay_ms = 50.0;      ///< ... or this long since the last fsync
};

struct JournalHeader {
  std::uint64_t fingerprint = 0;
  unsigned time_windows = 1;
  std::string workload;
  /// Correlation id of the campaign run that created this journal (see
  /// docs/FLEET_OBSERVABILITY.md); 0 when unknown (old journals). Not part
  /// of the fingerprint: re-running the same configuration is the same
  /// campaign under a new run id.
  std::uint64_t run_id = 0;
  /// Golden-run identity of the campaign that wrote this journal: FNV-1a 64
  /// digest of the golden output, its wall-clock seconds and byte count.
  /// All zero when unknown (old journals, or a writer without the fast
  /// path). A fast-path resume whose fingerprint matches can adopt these
  /// via TrialSupervisor::adopt_golden() and skip the golden re-run
  /// entirely. Not fingerprinted: the digest is derived state, not
  /// configuration.
  std::uint64_t golden_digest = 0;
  double golden_seconds = 0.0;
  std::uint64_t golden_output_bytes = 0;
};

/// One journaled trial attempt. NotInjected attempts are journaled too:
/// they consume an attempt index, and resume must account for every index
/// exactly for the continued campaign to be bit-identical.
struct JournalRecord {
  std::uint64_t attempt_index = 0;
  TrialResult trial;
};

struct JournalContents {
  JournalHeader header;
  std::vector<JournalRecord> records;
  /// File offset just past the last valid record; resume truncates here.
  std::uint64_t valid_bytes = 0;
  /// Bytes of truncated/corrupt tail dropped during the load (0 = clean).
  std::uint64_t dropped_bytes = 0;
};

class CampaignJournalWriter {
 public:
  /// Starts a fresh journal at `path` (truncating any existing file) and
  /// writes the header. Throws std::runtime_error on I/O failure.
  CampaignJournalWriter(const std::string& path, const JournalHeader& header,
                        JournalFsync fsync_policy,
                        JournalBatchPolicy batch = {});

  /// Reopens an existing (already loaded and fingerprint-checked) journal
  /// for appending. Truncates to `valid_bytes` first, dropping any torn
  /// tail a crash left behind.
  CampaignJournalWriter(const std::string& path, std::uint64_t valid_bytes,
                        JournalFsync fsync_policy,
                        JournalBatchPolicy batch = {});

  ~CampaignJournalWriter();

  CampaignJournalWriter(const CampaignJournalWriter&) = delete;
  CampaignJournalWriter& operator=(const CampaignJournalWriter&) = delete;

  /// Appends one record; durable per the fsync policy when it returns.
  void append(const JournalRecord& record);

  /// Forces buffered records to disk regardless of policy.
  void sync();

  [[nodiscard]] std::uint64_t written() const { return written_; }
  /// Records appended since the last fsync (kBatch diagnostics/tests).
  [[nodiscard]] std::uint64_t unsynced() const { return unsynced_; }
  /// Seconds the most recent append() spent inside fsync (0 when that
  /// append did not flush). Lets the latency profiler attribute a batched
  /// group-commit flush to the trial whose append triggered it.
  [[nodiscard]] double last_fsync_seconds() const {
    return last_fsync_seconds_;
  }

 private:
  void write_all(const void* data, std::size_t size);

  int fd_ = -1;
  JournalFsync fsync_ = JournalFsync::kEveryRecord;
  JournalBatchPolicy batch_;
  std::uint64_t written_ = 0;
  std::uint64_t unsynced_ = 0;
  double last_fsync_seconds_ = 0.0;
  std::chrono::steady_clock::time_point last_sync_{};
};

/// Loads a journal. A truncated or checksum-corrupt tail is dropped (and
/// reported via dropped_bytes); everything before it is returned. Throws
/// std::runtime_error only if the file cannot be opened or its header is
/// itself missing or corrupt.
JournalContents read_journal(const std::string& path);

/// CRC-32 (IEEE, reflected) over a byte buffer; exposed for tests and for
/// tools that audit journals.
std::uint32_t journal_crc32(const void* data, std::size_t size);

}  // namespace phifi::fi

// Persistent per-injection logs.
//
// CAROL-FI stores, for every injection: the fault model, the corrupted
// variable (name, frame, thread), where in the execution it fired, and the
// observed outcome; the paper publishes those logs for third-party analysis
// (its reference [40]). TrialLogWriter serializes a campaign's TrialResults
// to the same kind of CSV record; TrialLogReader loads them back so
// analyses can run on stored campaigns without re-executing anything.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace phifi::fi {

/// One parsed log record; a flattened TrialResult.
struct TrialLogEntry {
  std::uint64_t index = 0;
  Outcome outcome = Outcome::kMasked;
  DueKind due_kind = DueKind::kNone;
  FaultModel model = FaultModel::kSingle;
  FrameKind frame = FrameKind::kGlobal;
  std::int32_t worker = -1;
  std::string site;
  std::string category;
  std::uint64_t element_index = 0;
  std::uint32_t burst_elements = 1;
  double progress_fraction = 0.0;
  unsigned window = 0;
  double seconds = 0.0;
};

class TrialLogWriter {
 public:
  /// Writes the header row.
  explicit TrialLogWriter(std::ostream& os);

  /// Appends one trial.
  void append(const TrialResult& trial);

  /// Convenience: writes a whole campaign's trial list.
  void append_all(const CampaignResult& result);

  [[nodiscard]] std::uint64_t written() const { return written_; }

 private:
  std::ostream* os_;
  std::uint64_t written_ = 0;
};

class TrialLogReader {
 public:
  /// Parses a complete log (header + rows). Throws std::runtime_error on
  /// malformed input.
  static std::vector<TrialLogEntry> read(std::istream& is);

  /// Rebuilds the aggregate tallies (overall / per model / per window /
  /// per category) from parsed entries, so stored campaigns can feed the
  /// same analyses as live ones.
  static CampaignResult aggregate(const std::vector<TrialLogEntry>& entries,
                                  unsigned time_windows);
};

/// Round-trip helpers for enum fields (used by reader/writer and tests).
Outcome outcome_from_string(std::string_view text);
DueKind due_kind_from_string(std::string_view text);
FaultModel fault_model_from_string(std::string_view text);

}  // namespace phifi::fi

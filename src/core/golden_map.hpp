// Read-only shared mapping of the golden (fault-free) output.
//
// The legacy trial path ships every child's full output back through the
// per-slot SharedChannel and classifies in the parent. The fast path
// inverts this: the golden bytes are mapped ONCE — into a sealed memfd when
// the kernel supports it — before any fork, every trial child inherits the
// read-only mapping for free, classifies in place (memcmp + digest), and
// ships only a verdict. For the overwhelmingly common Masked outcome, zero
// output bytes cross the channel.
//
// The seals (F_SEAL_WRITE et al.) turn "read-only by convention" into
// "read-only by kernel contract": no process, including this one, can
// modify the golden image after sealing, so a misbehaving trial child
// cannot corrupt the reference every sibling classifies against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace phifi::fi {

/// FNV-1a 64-bit digest; the fast path's output fingerprint. Stable across
/// processes and runs by construction (pure function of the bytes).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> bytes);

class GoldenMap {
 public:
  GoldenMap() = default;
  ~GoldenMap();

  GoldenMap(const GoldenMap&) = delete;
  GoldenMap& operator=(const GoldenMap&) = delete;

  /// Copies `golden` into a shared read-only mapping (sealed memfd when
  /// available, plain shared anonymous mapping otherwise) and records its
  /// digest. Must be called in the campaign process before any trial fork
  /// so children inherit the mapping. Replaces any previous mapping.
  void publish(std::span<const std::byte> golden);

  /// Drops the mapping (parent-side only; children keep their inherited
  /// view until they exit).
  void reset();

  [[nodiscard]] bool mapped() const { return base_ != nullptr; }
  [[nodiscard]] std::span<const std::byte> golden() const {
    return {base_, size_};
  }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// True when the bytes live in a sealed memfd (vs the fallback mapping).
  [[nodiscard]] bool sealed() const { return sealed_; }

 private:
  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t digest_ = 0;
  bool sealed_ = false;
};

}  // namespace phifi::fi

#include "core/injection_site.hpp"

#include <algorithm>
#include <cassert>

namespace phifi::fi {

void SiteRegistry::add_global(std::string name, std::string category,
                              std::span<std::byte> bytes,
                              std::size_t element_size) {
  assert(!bytes.empty());
  assert(element_size > 0 && bytes.size() % element_size == 0);
  sites_.push_back(InjectionSite{.name = std::move(name),
                                 .category = std::move(category),
                                 .frame = FrameKind::kGlobal,
                                 .worker = -1,
                                 .data = bytes.data(),
                                 .bytes = bytes.size(),
                                 .element_size = element_size});
}

void SiteRegistry::add_worker(int worker, std::string name,
                              std::string category, std::span<std::byte> bytes,
                              std::size_t element_size) {
  assert(worker >= 0);
  assert(!bytes.empty());
  assert(element_size > 0 && bytes.size() % element_size == 0);
  sites_.push_back(InjectionSite{.name = std::move(name),
                                 .category = std::move(category),
                                 .frame = FrameKind::kWorker,
                                 .worker = worker,
                                 .data = bytes.data(),
                                 .bytes = bytes.size(),
                                 .element_size = element_size});
}

std::size_t SiteRegistry::worker_frame_count() const {
  int max_worker = -1;
  for (const auto& site : sites_) {
    if (site.frame == FrameKind::kWorker) {
      max_worker = std::max(max_worker, site.worker);
    }
  }
  return static_cast<std::size_t>(max_worker + 1);
}

std::vector<std::size_t> SiteRegistry::frame_sites(FrameKind frame,
                                                   int worker) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const auto& site = sites_[i];
    if (site.frame != frame) continue;
    if (frame == FrameKind::kWorker && site.worker != worker) continue;
    indices.push_back(i);
  }
  return indices;
}

std::size_t SiteRegistry::frame_sites_into(FrameKind frame, int worker,
                                           std::span<std::size_t> out) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < sites_.size() && count < out.size(); ++i) {
    const auto& site = sites_[i];
    if (site.frame != frame) continue;
    if (frame == FrameKind::kWorker && site.worker != worker) continue;
    out[count++] = i;
  }
  return count;
}

std::size_t SiteRegistry::total_bytes() const {
  std::size_t total = 0;
  for (const auto& site : sites_) total += site.bytes;
  return total;
}

}  // namespace phifi::fi

#include "core/supervisor.hpp"

#include <cerrno>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <cstdio>
#include <new>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"

namespace phifi::fi {

namespace {

using Clock = std::chrono::steady_clock;

/// Child exit code for an allocation failure under the address-space rlimit
/// (distinct from the generic uncaught-exception code 3).
constexpr int kChildExitRlimit = 4;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// waitpid that survives signal delivery to the campaign process: EINTR is
/// a retry, not an error. Any other failure is real and still throws.
// phicheck:eintr-helper retry loop below; every waitpid in this file routes here
pid_t waitpid_eintr(pid_t pid, int* status, int flags) {
  while (true) {
    const pid_t reaped = ::waitpid(pid, status, flags);
    if (reaped >= 0 || errno != EINTR) return reaped;
  }
}

/// Kills an overdue child: SIGTERM, a grace window, then SIGKILL. Returns
/// true if the SIGKILL escalation was needed. Always reaps the child.
bool kill_with_escalation(pid_t pid, double grace_seconds, int* status) {
  ::kill(pid, SIGTERM);
  const auto grace_start = Clock::now();
  while (seconds_since(grace_start) < grace_seconds) {
    const pid_t reaped = waitpid_eintr(pid, status, WNOHANG);
    if (reaped == pid) return false;
    if (reaped < 0) {
      throw std::runtime_error("TrialSupervisor: waitpid failed during kill");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(pid, SIGKILL);
  if (waitpid_eintr(pid, status, 0) < 0) {
    throw std::runtime_error("TrialSupervisor: waitpid failed after SIGKILL");
  }
  return true;
}

/// Poll pacing (WatchdogPoll::kAdaptive). Every wakeup costs parent CPU
/// (waitpid + clock reads), so the schedule minimizes wakeups: sleep half
/// the remaining gap (up to 20ms) far from the expected completion time,
/// then ~20 polls across the expected runtime near it — never finer than
/// the legacy fixed 200µs poll, so reap latency stays bounded by the same
/// constant while long trials cost orders of magnitude fewer wakeups.
std::chrono::microseconds adaptive_poll_interval(double elapsed,
                                                 double expected) {
  using std::chrono::microseconds;
  if (expected <= 0.0) return microseconds(200);
  const long floor_us = std::clamp(
      static_cast<long>(expected * 1e6 / 20.0), 200L, 1000L);
  if (elapsed < 0.8 * expected) {
    const double gap = 0.8 * expected - elapsed;
    const auto us = static_cast<long>(gap * 1e6 / 2.0);
    return microseconds(std::clamp(us, floor_us, 20000L));
  }
  if (elapsed < 1.5 * expected + 0.002) return microseconds(floor_us);
  // Hang territory: completion is unlikely to be imminent, and kill
  // decisions tolerate ms-scale latency.
  return microseconds(std::max(floor_us, 1000L));
}

}  // namespace

TrialSupervisor::TrialSupervisor(WorkloadFactory factory,
                                 SupervisorConfig config)
    : factory_(factory), config_(config) {
  assert(factory_ != nullptr);
}

TrialSupervisor::~TrialSupervisor() {
  // Never leave orphaned trial children behind: a campaign that throws
  // mid-flight still reaps on unwind.
  kill_active_slots();
}

void TrialSupervisor::prepare_golden() {
  auto workload = factory_();
  workload->setup(config_.input_seed);
  const auto start = Clock::now();
  {
    // Scoped so the device's pool threads are joined before any fork.
    phi::Device device(config_.device_spec, config_.device_os_threads);
    ProgressTracker progress;
    progress.reset(workload->total_steps());
    workload->run(device, progress);
    progress.finish();
    // Snapshot while the device is still alive: arithmetic intensity of the
    // fault-free run (Sec. 3.2/4.2) for the report and metrics export.
    golden_counters_ = device.counters().snapshot();
  }
  golden_seconds_ = seconds_since(start);
  const auto bytes = workload->output_bytes();
  golden_.assign(bytes.begin(), bytes.end());
  shape_ = workload->output_shape();
  type_ = workload->output_type();
  windows_ = workload->time_windows();
  name_ = workload->name();
  prepared_ = true;
  ensure_slots(1);
  util::log_info() << name_ << ": golden run " << golden_seconds_ << "s, "
                   << golden_.size() << " output bytes";
}

void TrialSupervisor::ensure_slots(unsigned count) {
  assert(prepared_ && "call prepare_golden() first");
  while (slots_.size() < count) {
    Slot slot;
    slot.channel = std::make_unique<SharedChannel>(golden_.size());
    slots_.push_back(std::move(slot));
  }
}

bool TrialSupervisor::slot_active(unsigned slot) const {
  return slot < slots_.size() && slots_[slot].active;
}

TrialResult TrialSupervisor::run_trial(const TrialConfig& config) {
  assert(prepared_ && "call prepare_golden() first");
  return run_child(&config);
}

TrialResult TrialSupervisor::run_clean_trial() {
  assert(prepared_ && "call prepare_golden() first");
  return run_child(nullptr);
}

std::span<const std::byte> TrialSupervisor::last_output() const {
  return slot_output(0);
}

std::span<const std::byte> TrialSupervisor::slot_output(unsigned slot) const {
  assert(slot < slots_.size());
  return slots_[slot].channel->output();
}

TrialResult TrialSupervisor::run_child(const TrialConfig* config) {
  assert(active_count_ == 0 &&
         "synchronous run_trial cannot overlap in-flight slots");
  launch(0, config);
  while (true) {
    std::vector<SlotCompletion> done = poll_slots();
    if (!done.empty()) return std::move(done.front().result);
    std::this_thread::sleep_for(next_poll_delay());
  }
}

void TrialSupervisor::launch(unsigned slot_index, const TrialConfig* config) {
  assert(slot_index < slots_.size());
  Slot& slot = slots_[slot_index];
  assert(!slot.active && "slot already has a child in flight");
  slot.channel->reset();
  SharedChannel* channel = slot.channel.get();
  const auto start = Clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("TrialSupervisor: fork failed");
  }
  if (pid == 0) {
    child_main(config, channel);  // never returns
  }
  slot.pid = pid;
  slot.active = true;
  slot.injected = config != nullptr;
  slot.start = start;
  slot.fork_done = seconds_since(start);
  slot.polls = 0;
  slot.last_beat = slot.channel->heartbeat();
  slot.last_beat_time = start;
  slot.last_poll_time = start;
  ++active_count_;
}

void TrialSupervisor::start_trial(unsigned slot, const TrialConfig& config) {
  launch(slot, &config);
}

std::vector<SlotCompletion> TrialSupervisor::poll_slots() {
  std::vector<SlotCompletion> done;
  // Reap pass: a single EINTR-safe wait loop picks up every child that has
  // exited, whichever slot it ran in.
  while (active_count_ > 0) {
    int status = 0;
    const pid_t reaped = waitpid_eintr(-1, &status, WNOHANG);
    if (reaped == 0) break;
    if (reaped < 0) {
      throw std::runtime_error("TrialSupervisor: waitpid failed");
    }
    bool matched = false;
    for (unsigned i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.active && slot.pid == reaped) {
        done.push_back({i, finalize_slot(slot, status, DueKind::kNone,
                                         /*escalated=*/false)});
        matched = true;
        break;
      }
    }
    if (!matched) {
      util::log_warn() << "TrialSupervisor: reaped unknown child pid "
                       << reaped;
    }
  }

  // Watchdog pass over the slots still running: deadline, heartbeat
  // extension, stall detection, escalation.
  telemetry::Histogram* poll_hist = nullptr;
  telemetry::Histogram* beat_hist = nullptr;
  if (config_.metrics != nullptr && active_count_ > 0) {
    poll_hist = &config_.metrics->histogram(
        "supervisor.poll_interval_ms", telemetry::watchdog_poll_edges_ms());
    beat_hist = &config_.metrics->histogram(
        "supervisor.heartbeat_gap_ms", telemetry::default_latency_edges_ms());
  }
  const double deadline = std::max(config_.min_timeout_seconds,
                                   config_.timeout_factor * golden_seconds_);
  const bool heartbeat_on = config_.heartbeat_divisions > 0;
  const double hard_deadline =
      heartbeat_on ? std::max(config_.max_deadline_factor, 1.0) * deadline
                   : deadline;
  // A child past the base deadline stays alive only while its heartbeat
  // advanced within this window; the optional stall timeout additionally
  // cuts a silent child before the deadline.
  const double liveness_window = config_.stall_timeout_seconds > 0.0
                                     ? config_.stall_timeout_seconds
                                     : deadline;

  for (unsigned i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.active) continue;
    ++slot.polls;
    const auto now = Clock::now();
    const double elapsed = seconds_since(slot.start);
    if (poll_hist != nullptr) {
      poll_hist->observe(
          std::chrono::duration<double, std::milli>(now - slot.last_poll_time)
              .count());
    }
    slot.last_poll_time = now;
    if (heartbeat_on) {
      const std::uint64_t beat = slot.channel->heartbeat();
      if (beat != slot.last_beat) {
        if (beat_hist != nullptr) {
          beat_hist->observe(std::chrono::duration<double, std::milli>(
                                 now - slot.last_beat_time)
                                 .count());
        }
        slot.last_beat = beat;
        slot.last_beat_time = now;
      }
    }
    const double beat_gap =
        std::chrono::duration<double>(now - slot.last_beat_time).count();

    DueKind killed_as = DueKind::kNone;
    if (heartbeat_on && config_.stall_timeout_seconds > 0.0 &&
        beat_gap > config_.stall_timeout_seconds) {
      killed_as = DueKind::kStall;
    } else if (elapsed > deadline) {
      const bool alive = heartbeat_on && beat_gap <= liveness_window &&
                         elapsed <= hard_deadline;
      if (!alive) killed_as = DueKind::kHang;
    }
    if (killed_as != DueKind::kNone) {
      int status = 0;
      const bool escalated =
          kill_with_escalation(slot.pid, config_.kill_grace_seconds, &status);
      done.push_back({i, finalize_slot(slot, status, killed_as, escalated)});
    }
  }
  return done;
}

std::chrono::microseconds TrialSupervisor::next_poll_delay() const {
  if (config_.poll != WatchdogPoll::kAdaptive) {
    return std::chrono::microseconds(200);
  }
  auto delay = std::chrono::microseconds(20000);
  bool any = false;
  for (const Slot& slot : slots_) {
    if (!slot.active) continue;
    any = true;
    delay = std::min(delay, adaptive_poll_interval(seconds_since(slot.start),
                                                   golden_seconds_));
  }
  return any ? delay : std::chrono::microseconds(200);
}

void TrialSupervisor::kill_active_slots() {
  for (Slot& slot : slots_) {
    if (!slot.active) continue;
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    (void)waitpid_eintr(slot.pid, &status, 0);
    slot.active = false;
    slot.pid = -1;
    --active_count_;
  }
}

TrialResult TrialSupervisor::finalize_slot(Slot& slot, int status,
                                           DueKind killed_as,
                                           bool escalated) {
  TrialResult result;
  result.seconds = seconds_since(slot.start);
  result.fork_done_seconds = slot.fork_done;
  result.reaped_seconds = result.seconds;
  result.polls = slot.polls;
  result.heartbeats = slot.channel->heartbeat();
  result.escalated_kill = escalated;
  result.phases = slot.channel->phases();
  if (slot.channel->record_ready()) result.record = slot.channel->record();
  result.window = windows_ == 0
                      ? 0
                      : std::min(windows_ - 1,
                                 static_cast<unsigned>(
                                     result.record.progress_fraction *
                                     windows_));

  if (killed_as != DueKind::kNone) {
    result.outcome = Outcome::kDue;
    result.due_kind = killed_as;
  } else if (WIFSIGNALED(status)) {
    result.outcome = Outcome::kDue;
    result.due_kind =
        WTERMSIG(status) == SIGXCPU ? DueKind::kRlimit : DueKind::kCrash;
  } else if (WIFEXITED(status) && WEXITSTATUS(status) == kChildExitRlimit) {
    result.outcome = Outcome::kDue;
    result.due_kind = DueKind::kRlimit;
  } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
             !slot.channel->output_ready()) {
    result.outcome = Outcome::kDue;
    result.due_kind = DueKind::kAbnormalExit;
  } else if (slot.injected && !result.record.injected) {
    // Clean exit but the flip never fired: the run finished before the
    // armed fraction (shouldn't happen with finish()-backstop, but stay
    // honest if it does).
    result.outcome = Outcome::kNotInjected;
  } else {
    // Clean exit: classify by comparing against the golden copy.
    const auto output = slot.channel->output();
    const bool matches =
        output.size() == golden_.size() &&
        std::memcmp(output.data(), golden_.data(), golden_.size()) == 0;
    result.outcome = matches ? Outcome::kMasked : Outcome::kSdc;
  }
  result.classified_seconds = seconds_since(slot.start);

  slot.active = false;
  slot.pid = -1;
  --active_count_;

  if (config_.metrics != nullptr && escalated) {
    config_.metrics->counter("supervisor.escalated_kills").inc();
  }
  if (config_.metrics != nullptr && killed_as != DueKind::kNone) {
    config_.metrics->counter("supervisor.watchdog_kills").inc();
  }
  return result;
}

// phicheck:fork-child-entry
void TrialSupervisor::child_main(const TrialConfig* config,
                                 SharedChannel* channel) {
  // From here on we are in the forked child. The parent was single-threaded
  // at fork time, so heap and libc state are consistent. Exit only through
  // _exit() so the parent's atexit handlers and buffers are not replayed.
  //
  // Injected faults routinely corrupt the child's heap; glibc then spams
  // stderr before aborting. That abort IS the result (a DUE), so the noise
  // is dropped unless the operator asked for verbose logs.
  if (util::log_level() > util::LogLevel::kInfo) {
    // Deliberate stdio before the workload entry: the parent was
    // single-threaded at fork, and the redirect must land before any
    // workload code can crash and trigger glibc's stderr spew.
    // phicheck:allow(fork-safety) reviewed pre-workload stderr redirect
    std::FILE* sink = std::freopen("/dev/null", "w", stderr);
    (void)sink;
  }
  // Resource fences: a runaway child dies by rlimit in the kernel even if
  // the parent's watchdog is starved or buggy.
  if (config_.child_address_space_mb > 0) {
    const rlim_t bytes =
        static_cast<rlim_t>(config_.child_address_space_mb) * 1024 * 1024;
    const rlimit limit{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &limit);
  }
  if (config_.child_cpu_seconds > 0) {
    // Hard limit one second later so SIGXCPU (catchable, classifiable) is
    // what lands, not the uncatchable hard-limit SIGKILL.
    const rlimit limit{config_.child_cpu_seconds,
                       static_cast<rlim_t>(config_.child_cpu_seconds) + 1};
    ::setrlimit(RLIMIT_CPU, &limit);
  }
  // phicheck:fork-workload-entry — from here the child runs workload code
  // (heap, threads, locks are the workload's business; crashes are DUEs).
  try {
    auto workload = factory_();
    workload->setup(config_.input_seed);

    SiteRegistry registry;
    workload->register_sites(registry);

    ProgressTracker progress;
    progress.reset(workload->total_steps());
    if (config_.heartbeat_divisions > 0) {
      progress.set_pulse(config_.heartbeat_divisions,
                         [channel] { channel->beat(); });
    }
    // Forward workload phase transitions to the parent through the shared
    // channel; timestamps are monotonic seconds from child start so the
    // tracer can place them inside the trial span.
    const auto child_start = Clock::now();
    progress.set_phase_hook(
        [channel, child_start](std::string_view phase, double fraction) {
          channel->store_phase(phase, fraction, seconds_since(child_start));
        });

    phi::Device device(config_.device_spec, config_.device_os_threads);

    util::Rng rng(config != nullptr ? config->trial_seed : 0);
    FlipEngine engine(registry, config != nullptr
                                    ? config->policy
                                    : SelectionPolicy::kCarolFi);
    if (config != nullptr) {
      const double target = rng.uniform(config->earliest_fraction,
                                        config->latest_fraction);
      // The hook runs on whichever worker thread crosses the target, like
      // the Flip-script running while the stopped program's state sits in
      // memory. Selection and fault bits come from the trial seed alone.
      progress.arm(target, [channel, config, &engine, &rng](double at) {
        // Publish a provisional record first: if the flip crashes the
        // program within microseconds, the parent still learns the model.
        InjectionRecord provisional;
        provisional.injected = true;
        provisional.model = config->model;
        provisional.progress_fraction = at;
        channel->store_record(provisional);
        const InjectionRecord record =
            engine.inject(config->model, rng, at, config->burst_elements);
        channel->store_record(record);
      });
    }

    workload->run(device, progress);
    progress.finish();

    channel->store_output(workload->output_bytes());
  } catch (const std::bad_alloc&) {
    ::_exit(kChildExitRlimit);
  } catch (...) {
    ::_exit(3);
  }
  ::_exit(0);
}

}  // namespace phifi::fi

#include "core/supervisor.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"

namespace phifi::fi {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

TrialSupervisor::TrialSupervisor(WorkloadFactory factory,
                                 SupervisorConfig config)
    : factory_(factory), config_(config) {
  assert(factory_ != nullptr);
}

TrialSupervisor::~TrialSupervisor() = default;

void TrialSupervisor::prepare_golden() {
  auto workload = factory_();
  workload->setup(config_.input_seed);
  const auto start = Clock::now();
  {
    // Scoped so the device's pool threads are joined before any fork.
    phi::Device device(config_.device_spec, config_.device_os_threads);
    ProgressTracker progress;
    progress.reset(workload->total_steps());
    workload->run(device, progress);
    progress.finish();
  }
  golden_seconds_ = seconds_since(start);
  const auto bytes = workload->output_bytes();
  golden_.assign(bytes.begin(), bytes.end());
  shape_ = workload->output_shape();
  type_ = workload->output_type();
  windows_ = workload->time_windows();
  name_ = workload->name();
  channel_ = std::make_unique<SharedChannel>(golden_.size());
  prepared_ = true;
  util::log_info() << name_ << ": golden run " << golden_seconds_ << "s, "
                   << golden_.size() << " output bytes";
}

TrialResult TrialSupervisor::run_trial(const TrialConfig& config) {
  assert(prepared_ && "call prepare_golden() first");
  return run_child(&config);
}

TrialResult TrialSupervisor::run_clean_trial() {
  assert(prepared_ && "call prepare_golden() first");
  return run_child(nullptr);
}

std::span<const std::byte> TrialSupervisor::last_output() const {
  return channel_->output();
}

TrialResult TrialSupervisor::run_child(const TrialConfig* config) {
  channel_->reset();
  const auto start = Clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("TrialSupervisor: fork failed");
  }
  if (pid == 0) {
    child_main(config);  // never returns
  }

  const double deadline = std::max(config_.min_timeout_seconds,
                                   config_.timeout_factor * golden_seconds_);
  int status = 0;
  bool timed_out = false;
  while (true) {
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) break;
    if (reaped < 0) {
      throw std::runtime_error("TrialSupervisor: waitpid failed");
    }
    if (seconds_since(start) > deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      timed_out = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  TrialResult result;
  result.seconds = seconds_since(start);
  if (channel_->record_ready()) result.record = channel_->record();
  result.window = windows_ == 0
                      ? 0
                      : std::min(windows_ - 1,
                                 static_cast<unsigned>(
                                     result.record.progress_fraction *
                                     windows_));

  if (timed_out) {
    result.outcome = Outcome::kDue;
    result.due_kind = DueKind::kHang;
    return result;
  }
  if (WIFSIGNALED(status)) {
    result.outcome = Outcome::kDue;
    result.due_kind = DueKind::kCrash;
    return result;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
      !channel_->output_ready()) {
    result.outcome = Outcome::kDue;
    result.due_kind = DueKind::kAbnormalExit;
    return result;
  }

  // Clean exit: classify by comparing against the golden copy.
  if (config != nullptr && !result.record.injected) {
    result.outcome = Outcome::kNotInjected;
    return result;
  }
  const auto output = channel_->output();
  const bool matches =
      output.size() == golden_.size() &&
      std::memcmp(output.data(), golden_.data(), golden_.size()) == 0;
  result.outcome = matches ? Outcome::kMasked : Outcome::kSdc;
  return result;
}

void TrialSupervisor::child_main(const TrialConfig* config) {
  // From here on we are in the forked child. The parent was single-threaded
  // at fork time, so heap and libc state are consistent. Exit only through
  // _exit() so the parent's atexit handlers and buffers are not replayed.
  //
  // Injected faults routinely corrupt the child's heap; glibc then spams
  // stderr before aborting. That abort IS the result (a DUE), so the noise
  // is dropped unless the operator asked for verbose logs.
  if (util::log_level() > util::LogLevel::kInfo) {
    std::FILE* sink = std::freopen("/dev/null", "w", stderr);
    (void)sink;
  }
  try {
    auto workload = factory_();
    workload->setup(config_.input_seed);

    SiteRegistry registry;
    workload->register_sites(registry);

    ProgressTracker progress;
    progress.reset(workload->total_steps());

    phi::Device device(config_.device_spec, config_.device_os_threads);

    util::Rng rng(config != nullptr ? config->trial_seed : 0);
    FlipEngine engine(registry, config != nullptr
                                    ? config->policy
                                    : SelectionPolicy::kCarolFi);
    if (config != nullptr) {
      const double target = rng.uniform(config->earliest_fraction,
                                        config->latest_fraction);
      // The hook runs on whichever worker thread crosses the target, like
      // the Flip-script running while the stopped program's state sits in
      // memory. Selection and fault bits come from the trial seed alone.
      progress.arm(target, [this, config, &engine, &rng](double at) {
        // Publish a provisional record first: if the flip crashes the
        // program within microseconds, the parent still learns the model.
        InjectionRecord provisional;
        provisional.injected = true;
        provisional.model = config->model;
        provisional.progress_fraction = at;
        channel_->store_record(provisional);
        const InjectionRecord record =
            engine.inject(config->model, rng, at, config->burst_elements);
        channel_->store_record(record);
      });
    }

    workload->run(device, progress);
    progress.finish();

    channel_->store_output(workload->output_bytes());
  } catch (...) {
    ::_exit(3);
  }
  ::_exit(0);
}

}  // namespace phifi::fi

#include "core/supervisor.hpp"

#include <cerrno>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <cstdio>
#include <new>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"
#include "util/posix_io.hpp"

namespace phifi::fi {

namespace {

using Clock = std::chrono::steady_clock;

/// Child exit code for an allocation failure under the address-space rlimit
/// (distinct from the generic uncaught-exception code 3).
constexpr int kChildExitRlimit = 4;

/// Template (fork-server) exit codes: fork of a trial grandchild failed /
/// waitpid on the grandchild failed. Either way the parent respawns it.
constexpr int kTemplateExitForkFailed = 5;
constexpr int kTemplateExitWaitFailed = 6;

/// A template that keeps dying this many times over one trial points at a
/// systemic problem (OOM killer, broken workload setup); give up loudly
/// rather than spin on respawns.
constexpr unsigned kMaxTemplateRespawns = 3;

/// Upper bound on one wait_for_completion() block. Completion itself wakes
/// the poll() instantly via an event fd; the tick only paces watchdog
/// bookkeeping (deadlines, stall detection), whose thresholds are seconds.
constexpr int kWatchdogTickMs = 10;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// waitpid that survives signal delivery to the campaign process: EINTR is
/// a retry, not an error. Any other failure is real and still throws.
// phicheck:eintr-helper retry loop below; every waitpid in this file routes here
pid_t waitpid_eintr(pid_t pid, int* status, int flags) {
  while (true) {
    const pid_t reaped = ::waitpid(pid, status, flags);
    if (reaped >= 0 || errno != EINTR) return reaped;
  }
}

/// Kills an overdue child: SIGTERM, a grace window, then SIGKILL. Returns
/// true if the SIGKILL escalation was needed. Always reaps the child.
bool kill_with_escalation(pid_t pid, double grace_seconds, int* status) {
  ::kill(pid, SIGTERM);
  const auto grace_start = Clock::now();
  while (seconds_since(grace_start) < grace_seconds) {
    const pid_t reaped = waitpid_eintr(pid, status, WNOHANG);
    if (reaped == pid) return false;
    if (reaped < 0) {
      throw std::runtime_error("TrialSupervisor: waitpid failed during kill");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(pid, SIGKILL);
  if (waitpid_eintr(pid, status, 0) < 0) {
    throw std::runtime_error("TrialSupervisor: waitpid failed after SIGKILL");
  }
  return true;
}

/// Poll pacing (WatchdogPoll::kAdaptive). Every wakeup costs parent CPU
/// (waitpid + clock reads), so the schedule minimizes wakeups: sleep half
/// the remaining gap (up to 20ms) far from the expected completion time,
/// then ~20 polls across the expected runtime near it — never finer than
/// the legacy fixed 200µs poll, so reap latency stays bounded by the same
/// constant while long trials cost orders of magnitude fewer wakeups.
std::chrono::microseconds adaptive_poll_interval(double elapsed,
                                                 double expected,
                                                 long min_floor_us) {
  using std::chrono::microseconds;
  if (expected <= 0.0) return microseconds(min_floor_us);
  const long floor_us = std::clamp(
      static_cast<long>(expected * 1e6 / 20.0), min_floor_us, 1000L);
  if (elapsed < 0.8 * expected) {
    const double gap = 0.8 * expected - elapsed;
    const auto us = static_cast<long>(gap * 1e6 / 2.0);
    return microseconds(std::clamp(us, floor_us, 20000L));
  }
  if (elapsed < 1.5 * expected + 0.002) return microseconds(floor_us);
  // Hang territory: completion is unlikely to be imminent, and kill
  // decisions tolerate ms-scale latency.
  return microseconds(std::max(floor_us, 1000L));
}

/// Flattens a TrialConfig into the POD command block the template loads
/// from shared memory. nullptr = clean (uninjected) trial.
TrialCommand to_command(const TrialConfig* config) {
  TrialCommand command;
  if (config == nullptr) return command;
  command.injected = true;
  command.trial_seed = config->trial_seed;
  command.model = static_cast<std::uint32_t>(config->model);
  command.policy = static_cast<std::uint32_t>(config->policy);
  command.burst = config->burst_elements;
  command.earliest_fraction = config->earliest_fraction;
  command.latest_fraction = config->latest_fraction;
  return command;
}

/// Wakes a template blocked on its command pipe. MSG_NOSIGNAL turns a dead
/// template into EPIPE instead of a campaign-killing SIGPIPE. Returns false
/// when the template is gone.
bool wake_template_fd(int fd) {
  const std::byte wake{1};
  return util::io::send_some(fd, &wake, 1, MSG_NOSIGNAL) == 1;
}

/// Busy-waits (1ms naps, bounded) until a pid no longer exists. Used on
/// orphaned grandchildren after SIGKILL: they reparent to init, so waitpid
/// cannot observe them, but no verdict/heartbeat write can land after the
/// process is gone.
void wait_pid_gone(pid_t pid, double timeout_seconds) {
  const auto start = Clock::now();
  while (::kill(pid, 0) == 0 && seconds_since(start) < timeout_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

TrialSupervisor::TrialSupervisor(WorkloadFactory factory,
                                 SupervisorConfig config)
    : factory_(factory), config_(config) {
  assert(factory_ != nullptr);
}

TrialSupervisor::~TrialSupervisor() {
  // Never leave orphaned trial children behind: a campaign that throws
  // mid-flight still reaps on unwind.
  kill_active_slots();
  shutdown_templates();
}

void TrialSupervisor::prepare_golden() {
  auto workload = factory_();
  workload->setup(config_.input_seed);
  const auto start = Clock::now();
  {
    // Scoped so the device's pool threads are joined before any fork.
    phi::Device device(config_.device_spec, config_.device_os_threads);
    ProgressTracker progress;
    progress.reset(workload->total_steps());
    workload->run(device, progress);
    progress.finish();
    // Snapshot while the device is still alive: arithmetic intensity of the
    // fault-free run (Sec. 3.2/4.2) for the report and metrics export.
    golden_counters_ = device.counters().snapshot();
  }
  golden_seconds_ = seconds_since(start);
  const auto bytes = workload->output_bytes();
  golden_.assign(bytes.begin(), bytes.end());
  shape_ = workload->output_shape();
  type_ = workload->output_type();
  windows_ = workload->time_windows();
  name_ = workload->name();
  output_capacity_ = golden_.size();
  // Digested on both paths: the journal header records it so a later
  // fast-path resume can adopt the golden without re-running it.
  golden_digest_ = fnv1a64(golden_);
  if (config_.trial_fast_path) {
    // Publish the golden once into a sealed read-only mapping every trial
    // child inherits, then pick the fork flavor: a workload that can
    // restore its post-setup image in place stays warm in this process and
    // trials fork straight from it; otherwise a per-slot template process
    // pays setup once and re-forks grandchildren.
    golden_map_.publish(golden_);
    if (workload->reset()) {
      resolved_mode_ = ForkMode::kWarm;
      warm_workload_ = std::move(workload);
      warm_workload_->register_sites(warm_registry_);
    } else {
      resolved_mode_ = ForkMode::kTemplate;
    }
  }
  prepared_ = true;
  ensure_slots(1);
  util::log_info() << name_ << ": golden run " << golden_seconds_ << "s, "
                   << golden_.size() << " output bytes"
                   << (config_.trial_fast_path
                           ? (resolved_mode_ == ForkMode::kWarm
                                  ? " (fast path: warm re-fork)"
                                  : " (fast path: fork-server templates)")
                           : "");
}

void TrialSupervisor::adopt_golden(std::uint64_t digest,
                                   std::uint64_t output_bytes,
                                   double golden_seconds) {
  if (!config_.trial_fast_path) {
    throw std::runtime_error(
        "TrialSupervisor: adopt_golden requires the trial fast path");
  }
  if (digest == 0 || output_bytes == 0) {
    throw std::runtime_error("TrialSupervisor: cannot adopt an empty golden");
  }
  // Output metadata comes from a setup-less instance: shape, type, windows
  // and name are structural workload properties, fixed at construction.
  auto workload = factory_();
  shape_ = workload->output_shape();
  type_ = workload->output_type();
  windows_ = workload->time_windows();
  name_ = workload->name();
  golden_digest_ = digest;
  output_capacity_ = output_bytes;
  golden_seconds_ = golden_seconds;  // preserves the watchdog deadline
  adopted_ = true;
  // Always template mode: there is no golden run here to leave a warm
  // image behind, so a template must pay setup (once per slot).
  resolved_mode_ = ForkMode::kTemplate;
  prepared_ = true;
  ensure_slots(1);
  util::log_info() << name_ << ": adopted golden digest, skipped "
                   << golden_seconds << "s golden run";
}

void TrialSupervisor::ensure_slots(unsigned count) {
  assert(prepared_ && "call prepare_golden() first");
  while (slots_.size() < count) {
    Slot slot;
    slot.channel = std::make_unique<SharedChannel>(output_capacity_);
    slots_.push_back(std::move(slot));
  }
}

bool TrialSupervisor::slot_active(unsigned slot) const {
  return slot < slots_.size() && slots_[slot].active;
}

TrialResult TrialSupervisor::run_trial(const TrialConfig& config) {
  assert(prepared_ && "call prepare_golden() first");
  return run_child(&config);
}

TrialResult TrialSupervisor::run_clean_trial() {
  assert(prepared_ && "call prepare_golden() first");
  return run_child(nullptr);
}

std::span<const std::byte> TrialSupervisor::last_output() const {
  return slot_output(0);
}

std::span<const std::byte> TrialSupervisor::slot_output(unsigned slot) const {
  assert(slot < slots_.size());
  const auto output = slots_[slot].channel->output();
  // Fast-path Masked trials ship zero output bytes (the verdict is enough);
  // observers expecting the trial's output get the golden span, which is
  // bit-identical by definition of Masked.
  if (output.empty() && golden_map_.mapped() &&
      slots_[slot].channel->verdict_ready() &&
      slots_[slot].channel->verdict_matches()) {
    return golden_map_.golden();
  }
  return output;
}

TrialResult TrialSupervisor::run_child(const TrialConfig* config) {
  assert(active_count_ == 0 &&
         "synchronous run_trial cannot overlap in-flight slots");
  launch(0, config);
  while (true) {
    std::vector<SlotCompletion> done = poll_slots();
    if (!done.empty()) return std::move(done.front().result);
    wait_for_completion();
  }
}

void TrialSupervisor::launch(unsigned slot_index, const TrialConfig* config) {
  assert(slot_index < slots_.size());
  Slot& slot = slots_[slot_index];
  assert(!slot.active && "slot already has a child in flight");
  slot.channel->reset();
  SharedChannel* channel = slot.channel.get();
  const auto start = Clock::now();
  slot.mode = config_.trial_fast_path ? resolved_mode_ : ForkMode::kLegacy;
  slot.respawn_attempts = 0;
  slot.setup_skipped = false;
  if (slot.mode == ForkMode::kLegacy) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("TrialSupervisor: fork failed");
    }
    if (pid == 0) {
      child_main(config, channel);  // never returns
    }
    slot.pid = pid;
  } else if (slot.mode == ForkMode::kWarm) {
    // Warm image: fork straight from this process; COW hands the child a
    // pristine copy of the post-setup workload and the site registry
    // pointing into it. No factory, setup or registration in the child.
    const TrialCommand command = to_command(config);
    Workload& workload = *warm_workload_;
    SiteRegistry& registry = warm_registry_;
    // Exit pipe: the child inherits the write end and never touches it, so
    // any exit — clean, crash, or SIGKILL — closes it in the kernel and the
    // parent's read end EOFs. wait_for_completion() blocks on that instead
    // of napping on a timer, which both removes reap latency and keeps the
    // parent truly idle (off-CPU) while the child computes.
    int exit_pipe[2] = {-1, -1};
    if (::pipe(exit_pipe) != 0) {
      throw std::runtime_error("TrialSupervisor: pipe failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(exit_pipe[0]);
      ::close(exit_pipe[1]);
      throw std::runtime_error("TrialSupervisor: fork failed");
    }
    if (pid == 0) {
      fast_trial_main(workload, registry, command, channel);  // never returns
    }
    ::close(exit_pipe[1]);
    slot.exit_fd = exit_pipe[0];
    slot.pid = pid;
    slot.setup_skipped = true;
  } else {
    // Template mode: hand the command to the slot's fork server (spawning
    // it first if needed) and let it re-fork the trial grandchild. The
    // grandchild is not our waitpid child; completion arrives through the
    // channel's status_ready flag.
    slot.pending = to_command(config);
    slot.setup_skipped = slot.template_pid > 0;
    dispatch_pending(slot_index);
    slot.pid = -1;
  }
  slot.active = true;
  slot.injected = config != nullptr;
  slot.start = start;
  slot.fork_done = seconds_since(start);
  slot.polls = 0;
  slot.last_beat = slot.channel->heartbeat();
  slot.last_beat_time = start;
  slot.last_poll_time = start;
  ++active_count_;
}

void TrialSupervisor::spawn_template(unsigned slot_index) {
  Slot& slot = slots_[slot_index];
  if (slot.cmd_fd >= 0) {
    // Stale pipe from a dead template; a fresh socketpair guarantees no
    // queued wake bytes survive into the new process.
    ::close(slot.cmd_fd);
    slot.cmd_fd = -1;
  }
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("TrialSupervisor: socketpair failed");
  }
  SharedChannel* channel = slot.channel.get();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("TrialSupervisor: template fork failed");
  }
  if (pid == 0) {
    template_main(channel, fds[1], fds[0]);  // never returns
  }
  ::close(fds[1]);
  slot.cmd_fd = fds[0];
  slot.template_pid = pid;
}

void TrialSupervisor::dispatch_pending(unsigned slot_index) {
  Slot& slot = slots_[slot_index];
  unsigned attempts = 0;
  while (true) {
    if (slot.template_pid < 0) {
      spawn_template(slot_index);
      slot.setup_skipped = false;  // this trial pays the template's setup
    }
    slot.channel->store_command(slot.pending);
    if (wake_template_fd(slot.cmd_fd)) return;
    // The template died between spawn and wake (EPIPE): reap and retry.
    int status = 0;
    (void)waitpid_eintr(slot.template_pid, &status, 0);
    slot.template_pid = -1;
    ++template_respawns_;
    if (++attempts >= kMaxTemplateRespawns) {
      throw std::runtime_error(
          "TrialSupervisor: template process keeps dying at startup");
    }
  }
}

void TrialSupervisor::start_trial(unsigned slot, const TrialConfig& config) {
  launch(slot, &config);
}

std::vector<SlotCompletion> TrialSupervisor::poll_slots() {
  std::vector<SlotCompletion> done;
  // Reap pass: a single EINTR-safe wait loop picks up every child that has
  // exited, whichever slot it ran in.
  while (active_count_ > 0) {
    int status = 0;
    const pid_t reaped = waitpid_eintr(-1, &status, WNOHANG);
    if (reaped == 0) break;
    if (reaped < 0) {
      throw std::runtime_error("TrialSupervisor: waitpid failed");
    }
    bool matched = false;
    for (unsigned i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.active && slot.pid == reaped) {
        done.push_back({i, finalize_slot(slot, status, DueKind::kNone,
                                         /*escalated=*/false)});
        matched = true;
        break;
      }
      if (slot.template_pid == reaped) {
        // A fork-server died. Idle slot: just forget it (the next launch
        // respawns). Active slot: clean up the orphaned grandchild and
        // replay the pending command — counter-indexed seeds make the
        // replayed trial bit-identical, so tallies are unaffected.
        slot.template_pid = -1;
        if (slot.active) handle_template_death(i);
        matched = true;
        break;
      }
    }
    if (!matched) {
      util::log_warn() << "TrialSupervisor: reaped unknown child pid "
                       << reaped;
    }
  }

  // Watchdog pass over the slots still running: deadline, heartbeat
  // extension, stall detection, escalation.
  telemetry::Histogram* poll_hist = nullptr;
  telemetry::Histogram* beat_hist = nullptr;
  if (config_.metrics != nullptr && active_count_ > 0) {
    poll_hist = &config_.metrics->histogram(
        "supervisor.poll_interval_ms", telemetry::watchdog_poll_edges_ms());
    beat_hist = &config_.metrics->histogram(
        "supervisor.heartbeat_gap_ms", telemetry::default_latency_edges_ms());
  }
  const double deadline = std::max(config_.min_timeout_seconds,
                                   config_.timeout_factor * golden_seconds_);
  const bool heartbeat_on = config_.heartbeat_divisions > 0;
  const double hard_deadline =
      heartbeat_on ? std::max(config_.max_deadline_factor, 1.0) * deadline
                   : deadline;
  // A child past the base deadline stays alive only while its heartbeat
  // advanced within this window; the optional stall timeout additionally
  // cuts a silent child before the deadline.
  const double liveness_window = config_.stall_timeout_seconds > 0.0
                                     ? config_.stall_timeout_seconds
                                     : deadline;

  for (unsigned i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.active) continue;
    ++slot.polls;
    // Template-mode completion: the grandchild is reaped by its template,
    // not by us, so "done" is the template's published wait status.
    if (slot.mode == ForkMode::kTemplate && slot.channel->status_ready()) {
      done.push_back({i, finalize_slot(slot, slot.channel->child_status(),
                                       DueKind::kNone, /*escalated=*/false)});
      continue;
    }
    const auto now = Clock::now();
    const double elapsed = seconds_since(slot.start);
    if (poll_hist != nullptr) {
      poll_hist->observe(
          std::chrono::duration<double, std::milli>(now - slot.last_poll_time)
              .count());
    }
    slot.last_poll_time = now;
    if (heartbeat_on) {
      const std::uint64_t beat = slot.channel->heartbeat();
      if (beat != slot.last_beat) {
        if (beat_hist != nullptr) {
          beat_hist->observe(std::chrono::duration<double, std::milli>(
                                 now - slot.last_beat_time)
                                 .count());
        }
        slot.last_beat = beat;
        slot.last_beat_time = now;
      }
    }
    const double beat_gap =
        std::chrono::duration<double>(now - slot.last_beat_time).count();

    DueKind killed_as = DueKind::kNone;
    if (heartbeat_on && config_.stall_timeout_seconds > 0.0 &&
        beat_gap > config_.stall_timeout_seconds) {
      killed_as = DueKind::kStall;
    } else if (elapsed > deadline) {
      const bool alive = heartbeat_on && beat_gap <= liveness_window &&
                         elapsed <= hard_deadline;
      if (!alive) killed_as = DueKind::kHang;
    }
    if (killed_as != DueKind::kNone) {
      int status = 0;
      if (slot.mode == ForkMode::kTemplate) {
        // Far past the hard deadline with still no grandchild pid, the
        // template itself is wedged (e.g. workload setup hangs): take the
        // whole subtree down instead of skipping forever.
        const bool force =
            elapsed > hard_deadline + std::max(1.0,
                                               config_.kill_grace_seconds);
        bool escalated = false;
        if (kill_template_trial(slot, force, &status, &escalated)) {
          done.push_back(
              {i, finalize_slot(slot, status, killed_as, escalated)});
        }
      } else {
        const bool escalated = kill_with_escalation(
            slot.pid, config_.kill_grace_seconds, &status);
        done.push_back({i, finalize_slot(slot, status, killed_as, escalated)});
      }
    }
  }
  return done;
}

bool TrialSupervisor::kill_template_trial(Slot& slot, bool force, int* status,
                                          bool* escalated) {
  const pid_t gpid = slot.channel->child_pid();
  if (gpid <= 0) {
    if (!force) return false;  // template hasn't forked yet; retry next poll
    // Wedged template, no grandchild: kill and reap the template itself.
    if (slot.template_pid > 0) {
      ::kill(slot.template_pid, SIGKILL);
      int template_status = 0;
      (void)waitpid_eintr(slot.template_pid, &template_status, 0);
      slot.template_pid = -1;
    }
    *status = SIGKILL;  // raw wait status: signaled by SIGKILL
    *escalated = true;
    return true;
  }
  // Normal path: signal the grandchild and wait for the template to reap
  // it and publish the status (SIGTERM, grace, then SIGKILL — mirroring
  // kill_with_escalation, with status_ready standing in for waitpid).
  ::kill(gpid, SIGTERM);
  const auto grace_start = Clock::now();
  while (seconds_since(grace_start) < config_.kill_grace_seconds) {
    if (slot.channel->status_ready()) {
      *status = slot.channel->child_status();
      *escalated = false;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(gpid, SIGKILL);
  *escalated = true;
  const auto kill_start = Clock::now();
  const double bound = std::max(1.0, config_.kill_grace_seconds);
  while (seconds_since(kill_start) < bound) {
    if (slot.channel->status_ready()) {
      *status = slot.channel->child_status();
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The grandchild is SIGKILLed but its template never published a status:
  // the template is wedged too. Take it down and synthesize the status.
  if (slot.template_pid > 0) {
    ::kill(slot.template_pid, SIGKILL);
    int template_status = 0;
    (void)waitpid_eintr(slot.template_pid, &template_status, 0);
    slot.template_pid = -1;
  }
  *status = SIGKILL;
  return true;
}

void TrialSupervisor::handle_template_death(unsigned slot_index) {
  Slot& slot = slots_[slot_index];
  ++template_respawns_;
  if (++slot.respawn_attempts > kMaxTemplateRespawns) {
    throw std::runtime_error(
        "TrialSupervisor: template process keeps dying mid-trial");
  }
  util::log_warn() << name_ << ": template for slot " << slot_index
                   << " died mid-trial; respawning and replaying";
  // The dead template's grandchild is now an orphan (reparented to init, so
  // not waitpid-able here). Kill it and wait until it is truly gone before
  // resetting the channel, so no late write races the replay.
  const pid_t gpid = slot.channel->child_pid();
  if (gpid > 0 && !slot.channel->status_ready()) {
    ::kill(gpid, SIGKILL);
    wait_pid_gone(gpid, 1.0);
  }
  slot.channel->reset();
  dispatch_pending(slot_index);
  if (config_.metrics != nullptr) {
    config_.metrics->counter("supervisor.template_respawns").inc();
  }
}

std::chrono::microseconds TrialSupervisor::next_poll_delay() const {
  if (config_.poll != WatchdogPoll::kAdaptive) {
    return std::chrono::microseconds(200);
  }
  auto delay = std::chrono::microseconds(20000);
  bool any = false;
  for (const Slot& slot : slots_) {
    if (!slot.active) continue;
    any = true;
    // Fast-path trials are often dominated by reap latency, so their poll
    // floor drops from the legacy 200µs to 50µs; the cost is bounded
    // because the adaptive schedule still backs off away from the expected
    // completion time.
    const long floor_us = slot.mode == ForkMode::kLegacy ? 200L : 50L;
    delay = std::min(delay, adaptive_poll_interval(seconds_since(slot.start),
                                                   golden_seconds_, floor_us));
  }
  return any ? delay : std::chrono::microseconds(200);
}

void TrialSupervisor::wait_for_completion() {
  // Gather the event fd of every active fast-path slot: warm trials EOF
  // their exit pipe, templates send a completion byte on the command
  // socketpair (whose closure also covers template death). Any active slot
  // without an event fd — legacy mode — forces the sleep fallback, because
  // poll(2) cannot express the legacy sub-ms schedule without busy-waiting.
  struct SlotEvent {
    pid_t hup_pid;  ///< process whose death a HUP on this fd signals
    bool drain;     ///< template completion byte, consumed here
  };
  std::vector<pollfd> fds;
  std::vector<SlotEvent> events;
  fds.reserve(slots_.size());
  events.reserve(slots_.size());
  bool evented = true;
  for (const Slot& slot : slots_) {
    if (!slot.active) continue;
    const bool warm = slot.mode == ForkMode::kWarm;
    const int fd = warm                               ? slot.exit_fd
                   : slot.mode == ForkMode::kTemplate ? slot.cmd_fd
                                                      : -1;
    if (fd < 0) {
      evented = false;
      break;
    }
    fds.push_back({fd, POLLIN, 0});
    events.push_back({warm ? slot.pid : slot.template_pid, !warm});
  }
  if (!evented || fds.empty()) {
    std::this_thread::sleep_for(next_poll_delay());
    return;
  }
  const int ready = util::io::poll_retry(
      fds.data(), static_cast<nfds_t>(fds.size()), kWatchdogTickMs);
  if (ready <= 0) return;  // watchdog tick: caller re-polls slots
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLHUP | POLLERR)) != 0 && events[i].hup_pid > 0) {
      // HUP means every write end is gone: the process is past the point of
      // running user code but may not be a zombie yet. Parking in a WNOWAIT
      // waitid hands it the CPU to finish dying — a single-core machine
      // would otherwise spin instantly-ready poll() against WNOHANG-empty
      // waitpid for a scheduler slice — while leaving the zombie for
      // poll_slots()'s reap pass.
      siginfo_t info;
      std::memset(&info, 0, sizeof(info));
      (void)::waitid(P_PID, static_cast<id_t>(events[i].hup_pid), &info,
                     WEXITED | WNOWAIT);
    } else if (events[i].drain && (fds[i].revents & POLLIN) != 0) {
      // Drain completion bytes so a byte observed after its trial was
      // already finalized via the channel flag cannot accumulate into a
      // stream of spurious instant wakes.
      std::byte consumed;
      (void)util::io::recv_some(fds[i].fd, &consumed, 1, MSG_DONTWAIT);
    }
  }
}

void TrialSupervisor::kill_active_slots() {
  for (Slot& slot : slots_) {
    if (!slot.active) continue;
    if (slot.mode == ForkMode::kTemplate) {
      // Cancel by killing the whole template subtree: the simplest way to
      // guarantee no queued wake byte, in-flight command, or late status
      // publish leaks into the slot's next trial. The next launch pays one
      // template respawn — cancels only happen at the campaign finish line.
      if (slot.template_pid > 0) {
        ::kill(slot.template_pid, SIGKILL);
        int status = 0;
        (void)waitpid_eintr(slot.template_pid, &status, 0);
        slot.template_pid = -1;
      }
      if (slot.cmd_fd >= 0) {
        ::close(slot.cmd_fd);
        slot.cmd_fd = -1;
      }
      const pid_t gpid = slot.channel->child_pid();
      if (gpid > 0 && !slot.channel->status_ready()) {
        ::kill(gpid, SIGKILL);
        wait_pid_gone(gpid, 1.0);
      }
    } else if (slot.pid > 0) {
      ::kill(slot.pid, SIGKILL);
      int status = 0;
      (void)waitpid_eintr(slot.pid, &status, 0);
    }
    if (slot.exit_fd >= 0) {
      ::close(slot.exit_fd);
      slot.exit_fd = -1;
    }
    slot.active = false;
    slot.pid = -1;
    --active_count_;
  }
}

void TrialSupervisor::shutdown_templates() {
  assert(active_count_ == 0 && "shutdown_templates with trials in flight");
  // Closing the parent end of the command pipe EOFs the template's blocking
  // read; it _exit(0)s and we reap it. Close ALL pipe ends first: a
  // template spawned later inherits the parent ends of earlier slots, so
  // EOF delivery can cascade in reverse spawn order.
  for (Slot& slot : slots_) {
    if (slot.cmd_fd >= 0) {
      ::close(slot.cmd_fd);
      slot.cmd_fd = -1;
    }
  }
  for (Slot& slot : slots_) {
    if (slot.template_pid > 0) {
      int status = 0;
      (void)waitpid_eintr(slot.template_pid, &status, 0);
      slot.template_pid = -1;
    }
  }
}

TrialResult TrialSupervisor::finalize_slot(Slot& slot, int status,
                                           DueKind killed_as,
                                           bool escalated) {
  TrialResult result;
  result.seconds = seconds_since(slot.start);
  result.fork_done_seconds = slot.fork_done;
  result.reaped_seconds = result.seconds;
  result.polls = slot.polls;
  result.heartbeats = slot.channel->heartbeat();
  result.escalated_kill = escalated;
  result.fork_mode = slot.mode;
  result.setup_skipped = slot.setup_skipped;
  result.setup_seconds = slot.channel->trial_setup_seconds();
  if (slot.mode == ForkMode::kTemplate && !slot.setup_skipped) {
    // This trial (re)spawned its fork server, so the template's one-time
    // workload setup sits on this trial's critical path.
    result.setup_seconds += slot.channel->template_setup_seconds();
  }
  result.inject_seconds = slot.channel->trial_inject_seconds();
  result.classify_child_seconds = slot.channel->trial_classify_seconds();
  result.phases = slot.channel->phases();
  if (slot.channel->record_ready()) result.record = slot.channel->record();
  result.window = windows_ == 0
                      ? 0
                      : std::min(windows_ - 1,
                                 static_cast<unsigned>(
                                     result.record.progress_fraction *
                                     windows_));

  if (killed_as != DueKind::kNone) {
    result.outcome = Outcome::kDue;
    result.due_kind = killed_as;
  } else if (WIFSIGNALED(status)) {
    result.outcome = Outcome::kDue;
    result.due_kind =
        WTERMSIG(status) == SIGXCPU ? DueKind::kRlimit : DueKind::kCrash;
  } else if (WIFEXITED(status) && WEXITSTATUS(status) == kChildExitRlimit) {
    result.outcome = Outcome::kDue;
    result.due_kind = DueKind::kRlimit;
  } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
             (slot.mode == ForkMode::kLegacy
                  ? !slot.channel->output_ready()
                  : !slot.channel->verdict_ready())) {
    result.outcome = Outcome::kDue;
    result.due_kind = DueKind::kAbnormalExit;
  } else if (slot.injected && !result.record.injected) {
    // Clean exit but the flip never fired: the run finished before the
    // armed fraction (shouldn't happen with finish()-backstop, but stay
    // honest if it does).
    result.outcome = Outcome::kNotInjected;
  } else if (slot.mode != ForkMode::kLegacy) {
    // Fast path: the child already classified against the shared golden
    // mapping (or its digest) and shipped only the verdict.
    result.outcome = slot.channel->verdict_matches() ? Outcome::kMasked
                                                     : Outcome::kSdc;
  } else {
    // Clean exit: classify by comparing against the golden copy.
    const auto output = slot.channel->output();
    const bool matches =
        output.size() == golden_.size() &&
        std::memcmp(output.data(), golden_.data(), golden_.size()) == 0;
    result.outcome = matches ? Outcome::kMasked : Outcome::kSdc;
  }
  result.classified_seconds = seconds_since(slot.start);

  if (slot.exit_fd >= 0) {
    ::close(slot.exit_fd);
    slot.exit_fd = -1;
  }
  slot.active = false;
  slot.pid = -1;
  slot.respawn_attempts = 0;
  // slot.template_pid deliberately survives: the fork server outlives the
  // trials it ran and keeps serving this slot.
  --active_count_;

  if (config_.metrics != nullptr && escalated) {
    config_.metrics->counter("supervisor.escalated_kills").inc();
  }
  if (config_.metrics != nullptr && killed_as != DueKind::kNone) {
    config_.metrics->counter("supervisor.watchdog_kills").inc();
  }
  return result;
}

// phicheck:fork-child-entry
void TrialSupervisor::child_main(const TrialConfig* config,
                                 SharedChannel* channel) {
  // From here on we are in the forked child. The parent was single-threaded
  // at fork time, so heap and libc state are consistent. Exit only through
  // _exit() so the parent's atexit handlers and buffers are not replayed.
  //
  // Injected faults routinely corrupt the child's heap; glibc then spams
  // stderr before aborting. That abort IS the result (a DUE), so the noise
  // is dropped unless the operator asked for verbose logs.
  if (util::log_level() > util::LogLevel::kInfo) {
    // Deliberate stdio before the workload entry: the parent was
    // single-threaded at fork, and the redirect must land before any
    // workload code can crash and trigger glibc's stderr spew.
    // phicheck:allow(fork-safety) reviewed pre-workload stderr redirect
    std::FILE* sink = std::freopen("/dev/null", "w", stderr);
    (void)sink;
  }
  // Resource fences: a runaway child dies by rlimit in the kernel even if
  // the parent's watchdog is starved or buggy.
  if (config_.child_address_space_mb > 0) {
    const rlim_t bytes =
        static_cast<rlim_t>(config_.child_address_space_mb) * 1024 * 1024;
    const rlimit limit{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &limit);
  }
  if (config_.child_cpu_seconds > 0) {
    // Hard limit one second later so SIGXCPU (catchable, classifiable) is
    // what lands, not the uncatchable hard-limit SIGKILL.
    const rlimit limit{config_.child_cpu_seconds,
                       static_cast<rlim_t>(config_.child_cpu_seconds) + 1};
    ::setrlimit(RLIMIT_CPU, &limit);
  }
  // phicheck:fork-workload-entry — from here the child runs workload code
  // (heap, threads, locks are the workload's business; crashes are DUEs).
  try {
    const auto setup_start = Clock::now();
    auto workload = factory_();
    workload->setup(config_.input_seed);
    const double setup_seconds = seconds_since(setup_start);

    const auto register_start = Clock::now();
    SiteRegistry registry;
    workload->register_sites(registry);
    double inject_seconds = seconds_since(register_start);

    ProgressTracker progress;
    progress.reset(workload->total_steps());
    if (config_.heartbeat_divisions > 0) {
      progress.set_pulse(config_.heartbeat_divisions,
                         [channel] { channel->beat(); });
    }
    // Forward workload phase transitions to the parent through the shared
    // channel; timestamps are monotonic seconds from child start so the
    // tracer can place them inside the trial span.
    const auto child_start = Clock::now();
    progress.set_phase_hook(
        [channel, child_start](std::string_view phase, double fraction) {
          channel->store_phase(phase, fraction, seconds_since(child_start));
        });

    phi::Device device(config_.device_spec, config_.device_os_threads);

    const auto arm_start = Clock::now();
    util::Rng rng(config != nullptr ? config->trial_seed : 0);
    FlipEngine engine(registry, config != nullptr
                                    ? config->policy
                                    : SelectionPolicy::kCarolFi);
    if (config != nullptr) {
      const double target = rng.uniform(config->earliest_fraction,
                                        config->latest_fraction);
      // The hook runs on whichever worker thread crosses the target, like
      // the Flip-script running while the stopped program's state sits in
      // memory. Selection and fault bits come from the trial seed alone.
      progress.arm(target, [channel, config, &engine, &rng](double at) {
        // Publish a provisional record first: if the flip crashes the
        // program within microseconds, the parent still learns the model.
        InjectionRecord provisional;
        provisional.injected = true;
        provisional.model = config->model;
        provisional.progress_fraction = at;
        channel->store_record(provisional);
        const InjectionRecord record =
            engine.inject(config->model, rng, at, config->burst_elements);
        channel->store_record(record);
      });
    }
    inject_seconds += seconds_since(arm_start);
    // Timing lands before run() so a trial that dies mid-run (a DUE) still
    // reports what it paid for setup and arming.
    channel->store_trial_timing(setup_seconds, inject_seconds, 0.0);

    workload->run(device, progress);
    progress.finish();

    channel->store_output(workload->output_bytes());
  } catch (const std::bad_alloc&) {
    ::_exit(kChildExitRlimit);
  } catch (...) {
    ::_exit(3);
  }
  ::_exit(0);
}

// phicheck:fork-child-entry
void TrialSupervisor::template_main(SharedChannel* channel, int cmd_fd,
                                    int parent_fd) {
  // Fork-server process: pay factory + setup + register_sites ONCE, then
  // loop re-forking trial grandchildren from this warm image on command.
  // COW gives every grandchild a pristine copy of the post-setup state, so
  // in-place mutation by one trial can never leak into the next.
  //
  // Inherited parent-side pipe ends are closed first — ours so the
  // parent's close reliably reads as EOF, the other slots' so their
  // shutdown does not wait on this process.
  ::close(parent_fd);
  for (const Slot& other : slots_) {
    if (other.cmd_fd >= 0 && other.cmd_fd != cmd_fd) ::close(other.cmd_fd);
  }
  // phicheck:fork-workload-entry — setup runs workload code; a crash here
  // surfaces as a template death and the parent respawns (bounded).
  try {
    const auto setup_start = Clock::now();
    auto workload = factory_();
    workload->setup(config_.input_seed);
    SiteRegistry registry;
    workload->register_sites(registry);
    channel->store_template_setup_seconds(seconds_since(setup_start));
    Workload& warm = *workload;
    while (true) {
      std::byte wake;
      const ssize_t n = util::io::read_some(cmd_fd, &wake, 1);
      if (n <= 0) ::_exit(0);  // parent closed the pipe: clean shutdown
      const TrialCommand command = channel->load_command();
      const pid_t pid = ::fork();
      if (pid < 0) ::_exit(kTemplateExitForkFailed);
      if (pid == 0) {
        fast_trial_main(warm, registry, command, channel);  // never returns
      }
      channel->publish_child(pid);
      int status = 0;
      if (waitpid_eintr(pid, &status, 0) < 0) {
        ::_exit(kTemplateExitWaitFailed);
      }
      channel->publish_status(status);
      // Completion byte, after the status is visible: wakes a parent
      // blocked in wait_for_completion(). Best effort — a vanished parent
      // surfaces as EOF on the next command read.
      const std::byte trial_done{1};
      (void)util::io::send_some(cmd_fd, &trial_done, 1, MSG_NOSIGNAL);
    }
  } catch (...) {
    ::_exit(3);
  }
}

// phicheck:fork-child-entry
void TrialSupervisor::fast_trial_main(Workload& workload,
                                      SiteRegistry& registry,
                                      const TrialCommand& command,
                                      SharedChannel* channel) {
  // Fast-path trial body: the workload arrives warm (COW from the campaign
  // process or a template), so there is no factory/setup/register_sites
  // here — straight to arming the flip and running. Classification happens
  // in place against the inherited golden mapping; only a verdict (and,
  // for SDC, the corrupted bytes) crosses the channel.
  if (util::log_level() > util::LogLevel::kInfo) {
    // Same deliberate pre-workload stderr redirect as child_main.
    // phicheck:allow(fork-safety) reviewed pre-workload stderr redirect
    std::FILE* sink = std::freopen("/dev/null", "w", stderr);
    (void)sink;
  }
  if (config_.child_address_space_mb > 0) {
    const rlim_t bytes =
        static_cast<rlim_t>(config_.child_address_space_mb) * 1024 * 1024;
    const rlimit limit{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &limit);
  }
  if (config_.child_cpu_seconds > 0) {
    const rlimit limit{config_.child_cpu_seconds,
                       static_cast<rlim_t>(config_.child_cpu_seconds) + 1};
    ::setrlimit(RLIMIT_CPU, &limit);
  }
  // phicheck:fork-workload-entry — from here the child runs workload code.
  try {
    ProgressTracker progress;
    progress.reset(workload.total_steps());
    if (config_.heartbeat_divisions > 0) {
      progress.set_pulse(config_.heartbeat_divisions,
                         [channel] { channel->beat(); });
    }
    const auto child_start = Clock::now();
    progress.set_phase_hook(
        [channel, child_start](std::string_view phase, double fraction) {
          channel->store_phase(phase, fraction, seconds_since(child_start));
        });

    phi::Device device(config_.device_spec, config_.device_os_threads);

    // Identical RNG construction and draw order to the legacy child_main:
    // the same trial seed selects the same site, bit and injection time,
    // which is what makes fast-path tallies bit-identical to legacy.
    const auto arm_start = Clock::now();
    util::Rng rng(command.injected ? command.trial_seed : 0);
    FlipEngine engine(registry,
                      command.injected
                          ? static_cast<SelectionPolicy>(command.policy)
                          : SelectionPolicy::kCarolFi);
    if (command.injected) {
      const double target = rng.uniform(command.earliest_fraction,
                                        command.latest_fraction);
      progress.arm(target, [channel, &command, &engine, &rng](double at) {
        InjectionRecord provisional;
        provisional.injected = true;
        provisional.model = static_cast<FaultModel>(command.model);
        provisional.progress_fraction = at;
        channel->store_record(provisional);
        const InjectionRecord record =
            engine.inject(static_cast<FaultModel>(command.model), rng, at,
                          command.burst);
        channel->store_record(record);
      });
    }
    const double inject_seconds = seconds_since(arm_start);

    workload.run(device, progress);
    progress.finish();

    // Classify in place: memcmp against the inherited golden mapping, or
    // digest-only when the golden was adopted from a journal.
    const auto classify_start = Clock::now();
    const auto output = workload.output_bytes();
    const std::uint64_t digest = fnv1a64(output);
    bool matches;
    if (golden_map_.mapped()) {
      matches = output.size() == golden_map_.size() &&
                std::memcmp(output.data(), golden_map_.golden().data(),
                            output.size()) == 0;
    } else {
      matches = output.size() == output_capacity_ && digest == golden_digest_;
    }
    // SDC ships the corrupted bytes for parent-side analysis; Masked ships
    // nothing but the verdict. Output lands before the verdict flag so the
    // parent never sees a verdict without its bytes.
    if (!matches) channel->store_output(output);
    // Warm trials paid no setup (the post-setup image arrived via COW);
    // template-mode setup is the template's one-time cost, attributed by
    // finalize_slot from template_setup_seconds for the trial that paid it.
    channel->store_trial_timing(0.0, inject_seconds,
                                seconds_since(classify_start));
    channel->store_verdict(matches, digest);
  } catch (const std::bad_alloc&) {
    ::_exit(kChildExitRlimit);
  } catch (...) {
    ::_exit(3);
  }
  ::_exit(0);
}

}  // namespace phifi::fi

#include "core/campaign_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/posix_io.hpp"

namespace phifi::fi {

namespace {

constexpr char kMagic[8] = {'P', 'H', 'I', 'F', 'I', 'J', 'L', '1'};

// ---- little-endian field (de)serialization ----

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_bytes(std::vector<std::uint8_t>& out, const char* data,
               std::size_t size) {
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(data),
             reinterpret_cast<const std::uint8_t*>(data) + size);
}

class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void bytes(char* out, std::size_t size) {
    need(size);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  void need(std::size_t n) {
    if (pos_ + n > size_) {
      throw std::runtime_error("journal record payload too short");
    }
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> serialize_record(const JournalRecord& record) {
  std::vector<std::uint8_t> out;
  out.reserve(192);
  const TrialResult& t = record.trial;
  const InjectionRecord& r = t.record;
  put_u64(out, record.attempt_index);
  put_u8(out, static_cast<std::uint8_t>(t.outcome));
  put_u8(out, static_cast<std::uint8_t>(t.due_kind));
  put_u32(out, t.window);
  put_f64(out, t.seconds);
  put_u64(out, t.heartbeats);
  put_u8(out, t.escalated_kill ? 1 : 0);
  put_u8(out, r.injected ? 1 : 0);
  put_u8(out, r.changed ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(r.model));
  put_u8(out, static_cast<std::uint8_t>(r.frame));
  put_u32(out, static_cast<std::uint32_t>(r.worker));
  put_u32(out, r.site_index);
  put_u64(out, r.element_index);
  put_u32(out, r.burst_elements);
  put_u64(out, r.flipped_bits[0]);
  put_u64(out, r.flipped_bits[1]);
  put_u32(out, r.flipped_count);
  put_f64(out, r.progress_fraction);
  put_bytes(out, r.site_name, sizeof(r.site_name));
  put_bytes(out, r.category, sizeof(r.category));
  return out;
}

JournalRecord deserialize_record(const std::uint8_t* data, std::size_t size) {
  Cursor c(data, size);
  JournalRecord record;
  TrialResult& t = record.trial;
  InjectionRecord& r = t.record;
  record.attempt_index = c.u64();
  t.outcome = static_cast<Outcome>(c.u8());
  t.due_kind = static_cast<DueKind>(c.u8());
  t.window = c.u32();
  t.seconds = c.f64();
  t.heartbeats = c.u64();
  t.escalated_kill = c.u8() != 0;
  r.injected = c.u8() != 0;
  r.changed = c.u8() != 0;
  r.model = static_cast<FaultModel>(c.u8());
  r.frame = static_cast<FrameKind>(c.u8());
  r.worker = static_cast<std::int32_t>(c.u32());
  r.site_index = c.u32();
  r.element_index = c.u64();
  r.burst_elements = c.u32();
  r.flipped_bits[0] = c.u64();
  r.flipped_bits[1] = c.u64();
  r.flipped_count = c.u32();
  r.progress_fraction = c.f64();
  c.bytes(r.site_name, sizeof(r.site_name));
  c.bytes(r.category, sizeof(r.category));
  if (!c.exhausted()) {
    throw std::runtime_error("journal record payload has trailing bytes");
  }
  return record;
}

std::vector<std::uint8_t> serialize_header(const JournalHeader& header) {
  std::vector<std::uint8_t> out;
  put_u64(out, header.fingerprint);
  put_u32(out, header.time_windows);
  put_u32(out, static_cast<std::uint32_t>(header.workload.size()));
  put_bytes(out, header.workload.data(), header.workload.size());
  put_u64(out, header.run_id);
  put_u64(out, header.golden_digest);
  put_f64(out, header.golden_seconds);
  put_u64(out, header.golden_output_bytes);
  return out;
}

/// Frames a payload as size | payload | crc.
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 8);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, journal_crc32(payload.data(), payload.size()));
  return out;
}

}  // namespace

std::uint32_t journal_crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

CampaignJournalWriter::CampaignJournalWriter(const std::string& path,
                                             const JournalHeader& header,
                                             JournalFsync fsync_policy,
                                             JournalBatchPolicy batch)
    : fsync_(fsync_policy),
      batch_(batch),
      last_sync_(std::chrono::steady_clock::now()) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot create '" + path +
                             "': " + std::strerror(errno));
  }
  write_all(kMagic, sizeof(kMagic));
  const auto framed = frame(serialize_header(header));
  write_all(framed.data(), framed.size());
  if (fsync_ == JournalFsync::kEveryRecord) ::fsync(fd_);
}

CampaignJournalWriter::CampaignJournalWriter(const std::string& path,
                                             std::uint64_t valid_bytes,
                                             JournalFsync fsync_policy,
                                             JournalBatchPolicy batch)
    : fsync_(fsync_policy),
      batch_(batch),
      last_sync_(std::chrono::steady_clock::now()) {
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot reopen '" + path +
                             "': " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("journal: cannot truncate '" + path +
                             "': " + std::strerror(err));
  }
}

CampaignJournalWriter::~CampaignJournalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void CampaignJournalWriter::write_all(const void* data, std::size_t size) {
  if (!util::io::write_fully(fd_, data, size)) {
    throw std::runtime_error(std::string("journal: write failed: ") +
                             std::strerror(errno));
  }
}

void CampaignJournalWriter::append(const JournalRecord& record) {
  const auto framed = frame(serialize_record(record));
  write_all(framed.data(), framed.size());
  ++written_;
  last_fsync_seconds_ = 0.0;
  if (fsync_ == JournalFsync::kEveryRecord) {
    const auto fsync_start = std::chrono::steady_clock::now();
    // phicheck:blocking-ok(worker-side shard journal: kEveryRecord is the caller's explicit durability/latency trade; the coordinator loop reaches here only through name-union on 'append')
    ::fsync(fd_);
    last_fsync_seconds_ = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - fsync_start)
                              .count();
  } else if (fsync_ == JournalFsync::kBatch) {
    ++unsynced_;
    const double since_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - last_sync_)
                                .count();
    if (unsynced_ >= batch_.max_records || since_ms >= batch_.max_delay_ms) {
      const auto fsync_start = std::chrono::steady_clock::now();
      sync();
      last_fsync_seconds_ = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - fsync_start)
                                .count();
    }
  }
}

void CampaignJournalWriter::sync() {
  // phicheck:blocking-ok(batch-policy flush point: durability is the purpose; runs on the worker process, not the coordinator thread)
  if (fd_ >= 0) ::fsync(fd_);
  unsynced_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
}

JournalContents read_journal(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("journal: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  std::vector<std::uint8_t> file;
  // phicheck:blocking-ok(journal replay happens at worker startup/lease adoption, off the coordinator thread; the walk reaches here via same-name tick/handle union)
  if (!util::io::read_to_end(fd, file)) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("journal: read failed: " +
                             std::string(std::strerror(err)));
  }
  ::close(fd);

  // A frame is readable at `pos` if size, payload and crc all fit and the
  // crc matches; returns the payload span or nullptr.
  const auto try_frame = [&file](std::size_t pos, std::size_t* payload_size,
                                 std::size_t* next) -> const std::uint8_t* {
    if (pos + 4 > file.size()) return nullptr;
    std::uint32_t size = 0;
    for (int i = 0; i < 4; ++i) size |= std::uint32_t{file[pos + i]} << (8 * i);
    if (pos + 4 + size + 4 > file.size() || size > (1u << 20)) return nullptr;
    const std::uint8_t* payload = file.data() + pos + 4;
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= std::uint32_t{file[pos + 4 + size + i]} << (8 * i);
    }
    if (journal_crc32(payload, size) != stored_crc) return nullptr;
    *payload_size = size;
    *next = pos + 4 + size + 4;
    return payload;
  };

  if (file.size() < sizeof(kMagic) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("journal: '" + path +
                             "' is not a campaign journal (bad magic)");
  }

  JournalContents contents;
  std::size_t pos = sizeof(kMagic);
  std::size_t payload_size = 0;
  std::size_t next = 0;
  const std::uint8_t* payload = try_frame(pos, &payload_size, &next);
  if (payload == nullptr) {
    throw std::runtime_error("journal: '" + path + "' has a corrupt header");
  }
  {
    Cursor c(payload, payload_size);
    contents.header.fingerprint = c.u64();
    contents.header.time_windows = c.u32();
    const std::uint32_t name_len = c.u32();
    contents.header.workload.resize(name_len);
    c.bytes(contents.header.workload.data(), name_len);
    // Journals written before the observability plane end here.
    if (!c.exhausted()) contents.header.run_id = c.u64();
    // ... and those written before the trial fast path end here.
    if (!c.exhausted()) {
      contents.header.golden_digest = c.u64();
      contents.header.golden_seconds = c.f64();
      contents.header.golden_output_bytes = c.u64();
    }
  }
  pos = next;

  // Records: stop at the first unreadable frame — that is the torn tail a
  // crash leaves behind. Everything before it is intact (each record has
  // its own checksum), so the campaign loses at most the in-flight trial.
  while (pos < file.size()) {
    payload = try_frame(pos, &payload_size, &next);
    if (payload == nullptr) break;
    JournalRecord record;
    try {
      record = deserialize_record(payload, payload_size);
    } catch (const std::runtime_error&) {
      break;  // checksum ok but shape wrong: treat as corrupt tail
    }
    contents.records.push_back(record);
    pos = next;
  }
  contents.valid_bytes = pos;
  contents.dropped_bytes = file.size() - pos;
  return contents;
}

}  // namespace phifi::fi

#include "core/fault_model.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace phifi::fi {

FaultApplication apply_fault(FaultModel model, std::span<std::byte> element,
                             util::Rng& rng) {
  assert(!element.empty());
  FaultApplication app;
  app.model = model;
  const std::size_t total_bits = element.size() * 8;

  switch (model) {
    case FaultModel::kSingle: {
      const std::size_t bit = rng.below(total_bits);
      util::flip_bit(element, bit);
      app.flipped_bits[0] = bit;
      app.flipped_count = 1;
      app.changed = true;
      break;
    }
    case FaultModel::kDouble: {
      // Two distinct bits within one randomly chosen byte: multi-cell upsets
      // are physically adjacent, so the paper restricts the bit distance.
      const std::size_t byte = rng.below(element.size());
      const std::size_t first = rng.below(8);
      std::size_t second = rng.below(7);
      if (second >= first) ++second;
      util::flip_bit(element, byte * 8 + first);
      util::flip_bit(element, byte * 8 + second);
      app.flipped_bits = {byte * 8 + first, byte * 8 + second};
      app.flipped_count = 2;
      app.changed = true;
      break;
    }
    case FaultModel::kRandom: {
      bool changed = false;
      for (std::size_t i = 0; i < element.size(); ++i) {
        const auto fresh = static_cast<std::byte>(rng.next() & 0xff);
        changed |= (fresh != element[i]);
        element[i] = fresh;
      }
      app.changed = changed;
      break;
    }
    case FaultModel::kZero: {
      bool changed = false;
      for (std::byte& b : element) {
        changed |= (b != std::byte{0});
        b = std::byte{0};
      }
      app.changed = changed;
      break;
    }
  }
  return app;
}

}  // namespace phifi::fi

// Shared EINTR-retry / partial-I/O helpers (docs/STATIC_ANALYSIS.md, eintr
// checker). The supervisor forwards signals and reaps children while the
// fabric is mid-syscall, so every raw read/write/poll/accept in the project
// must either live here or carry a phicheck annotation explaining why not.
#pragma once

#include <poll.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace phifi::util::io {

/// Writes all of `data`, retrying on EINTR and short writes. Returns false
/// on a hard error with errno preserved.
bool write_fully(int fd, const void* data, std::size_t size);

/// One read, retrying on EINTR only. Returns the byte count, 0 at EOF, or
/// -1 with errno set (never EINTR).
ssize_t read_some(int fd, void* buffer, std::size_t size);

/// Appends the remainder of `fd` to `out`. Returns false on a hard read
/// error with errno preserved.
bool read_to_end(int fd, std::vector<std::uint8_t>& out);

/// send/recv retrying on EINTR only; EAGAIN/EWOULDBLOCK pass through to the
/// caller, which owns the backpressure policy.
ssize_t send_some(int fd, const void* data, std::size_t size, int flags);
ssize_t recv_some(int fd, void* buffer, std::size_t size, int flags);

/// poll retrying on EINTR with the same timeout: callers treat a signal
/// mid-wait like an early timeout tick, which every poll loop here already
/// tolerates. Returns the ready count or -1 with errno set (never EINTR).
int poll_retry(pollfd* fds, nfds_t count, int timeout_ms);

/// accept retrying on EINTR only. Returns the new fd or -1 with errno set.
int accept_retry(int listen_fd);

}  // namespace phifi::util::io

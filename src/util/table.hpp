// Plain-text and CSV table rendering for the benchmark harnesses.
//
// Every figure/table bench prints its result both as an aligned text table
// (for eyeballing against the paper) and optionally as CSV (for plotting).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace phifi::util {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Adds a data row; the number of cells must match the header width
  /// (asserted in debug builds, padded/truncated otherwise).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string-like formatting.
  void add_row(std::initializer_list<std::string> row) {
    add_row(std::vector<std::string>(row));
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }

  /// Renders an aligned monospace table with a rule under the header.
  void print_text(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (no locale).
std::string fmt(double value, int decimals = 2);

/// Formats "point [lo, hi]" for interval reporting.
std::string fmt_interval(double point, double lo, double hi,
                         int decimals = 1);

/// Formats a fraction as a percentage string, e.g. 0.853 -> "85.3%".
std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace phifi::util

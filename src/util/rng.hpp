// Deterministic pseudo-random number generation for fault-injection campaigns.
//
// Every stochastic decision in the framework (input generation, injection
// time, site selection, fault model bits, beam strike sampling) flows through
// Rng so that a campaign is fully reproducible from a single 64-bit seed.
// The generator is xoshiro256** seeded via SplitMix64, which is fast,
// has a 2^256-1 period, and passes BigCrush; <random> engines are avoided
// because their distributions are not portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

namespace phifi::util {

/// Expands a 64-bit seed into a stream of well-mixed 64-bit values.
/// Used for seeding and for cheap one-shot hashing of (seed, index) pairs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  /// Derives an independent child generator; used to hand each forked trial
  /// its own stream so trial outcomes do not depend on campaign ordering.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) {
    SplitMix64 mix(next() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    Rng child(mix.next());
    return child;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method;
  /// bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (events per unit). rate > 0.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS-style normal approximation fallback for large means).
  std::uint64_t poisson(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Zero or negative weights are treated as zero; if all weights are zero,
  /// picks uniformly. Requires a non-empty span.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index permutation of the given size.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace phifi::util

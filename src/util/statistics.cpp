#include "util/statistics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

namespace phifi::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ = m2_ + other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

// Acklam's rational approximation to the inverse standard normal CDF.
double inverse_normal_cdf(double p) {
  assert(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double normal_quantile_two_sided(double confidence) {
  assert(confidence > 0.0 && confidence < 1.0);
  return inverse_normal_cdf(0.5 + confidence / 2.0);
}

Interval wald_interval(std::uint64_t successes, std::uint64_t trials,
                       double confidence) {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normal_quantile_two_sided(confidence);
  const double half = z * std::sqrt(p * (1.0 - p) / n);
  return {.point = p,
          .lo = std::max(0.0, p - half),
          .hi = std::min(1.0, p + half)};
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double confidence) {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normal_quantile_two_sided(confidence);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {.point = p,
          .lo = std::max(0.0, center - half),
          .hi = std::min(1.0, center + half)};
}

Interval poisson_interval(std::uint64_t count, double confidence) {
  const double k = static_cast<double>(count);
  const double z = normal_quantile_two_sided(confidence);
  // Normal approximation on the square-root (variance-stabilized) scale,
  // which stays usable down to small counts; exact for our reporting needs.
  const double sq = std::sqrt(k + 0.25);
  const double lo = std::max(0.0, sq - z / 2.0);
  const double hi = sq + z / 2.0;
  return {.point = k, .lo = lo * lo - 0.25, .hi = hi * hi - 0.25};
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

TwoProportionTest two_proportion_z_test(std::uint64_t successes1,
                                        std::uint64_t trials1,
                                        std::uint64_t successes2,
                                        std::uint64_t trials2) {
  TwoProportionTest test;
  if (trials1 == 0 || trials2 == 0) return test;  // no evidence either way
  const double n1 = static_cast<double>(trials1);
  const double n2 = static_cast<double>(trials2);
  const double p1 = static_cast<double>(successes1) / n1;
  const double p2 = static_cast<double>(successes2) / n2;
  const double pooled =
      (static_cast<double>(successes1) + static_cast<double>(successes2)) /
      (n1 + n2);
  const double variance = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
  // Pooled proportion of 0 or 1 forces p1 == p2: identical rates, z = 0.
  if (variance <= 0.0) return test;
  test.z = (p1 - p2) / std::sqrt(variance);
  test.p_value = 2.0 * (1.0 - normal_cdf(std::abs(test.z)));
  return test;
}

double chi_squared_statistic(std::span<const std::uint64_t> observed,
                             std::span<const double> expected) {
  assert(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

double interpolate(std::span<const double> xs, std::span<const double> ys,
                   double x) {
  assert(xs.size() == ys.size());
  assert(!xs.empty());
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::lower_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

}  // namespace phifi::util

#include "util/posix_io.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace phifi::util::io {

// phicheck:eintr-helper canonical partial-write loop
bool write_fully(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, cursor, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

// phicheck:eintr-helper canonical read retry
ssize_t read_some(int fd, void* buffer, std::size_t size) {
  while (true) {
    // phicheck:blocking-ok(wrapper: whether this read blocks is the caller's fd contract; poll-loop callers are flagged at their own call sites)
    const ssize_t n = ::read(fd, buffer, size);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool read_to_end(int fd, std::vector<std::uint8_t>& out) {
  std::uint8_t chunk[4096];
  while (true) {
    const ssize_t n = read_some(fd, chunk, sizeof chunk);
    if (n < 0) return false;
    if (n == 0) return true;
    out.insert(out.end(), chunk, chunk + n);
  }
}

// phicheck:eintr-helper canonical send retry; EAGAIN is the caller's
ssize_t send_some(int fd, const void* data, std::size_t size, int flags) {
  while (true) {
    const ssize_t n = ::send(fd, data, size, flags);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

// phicheck:eintr-helper canonical recv retry; EAGAIN is the caller's
ssize_t recv_some(int fd, void* buffer, std::size_t size, int flags) {
  while (true) {
    const ssize_t n = ::recv(fd, buffer, size, flags);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

// phicheck:eintr-helper signal mid-wait == early timeout tick
int poll_retry(pollfd* fds, nfds_t count, int timeout_ms) {
  while (true) {
    const int n = ::poll(fds, count, timeout_ms);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

// phicheck:eintr-helper canonical accept retry
int accept_retry(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

}  // namespace phifi::util::io

// Minimal JSON value: build, serialize, parse.
//
// The telemetry subsystem's outputs (NDJSON trial traces, metrics
// snapshots) and phifi_parse's --json mode are machine-readable by design —
// FINJ and ZOFI both treat per-injection event streams as the injector's
// primary output. This is a deliberately small, dependency-free JSON
// module: one variant value type, a writer with correct string escaping,
// and a strict recursive-descent parser. Not a general-purpose library —
// no comments, no NaN/Inf (serialized as null, as JSON requires), numbers
// are doubles (exact for integers up to 2^53, far beyond any campaign).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace phifi::util::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// std::map keeps key order deterministic so serialized output is
  /// byte-stable across runs (the CI schema check diffs it).
  using Object = std::map<std::string, Value>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool value) : data_(value) {}
  Value(double value) : data_(value) {}
  Value(int value) : data_(static_cast<double>(value)) {}
  Value(unsigned value) : data_(static_cast<double>(value)) {}
  Value(std::int64_t value) : data_(static_cast<double>(value)) {}
  Value(std::uint64_t value) : data_(static_cast<double>(value)) {}
  Value(const char* value) : data_(std::string(value)) {}
  Value(std::string value) : data_(std::move(value)) {}
  Value(std::string_view value) : data_(std::string(value)) {}

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }
  Value(Array value) : data_(std::move(value)) {}
  Value(Object value) : data_(std::move(value)) {}

  [[nodiscard]] Type type() const {
    return static_cast<Type>(data_.index());
  }
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object access: set (creates the value, converts null to object).
  Value& operator[](const std::string& key);
  /// Object lookup: nullptr if this is not an object or the key is absent.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Object lookup with a fallback for absent keys.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

  /// Array append (converts null to array).
  void push_back(Value value);
  [[nodiscard]] std::size_t size() const;

  /// Compact one-line serialization (NDJSON-friendly: no raw newlines).
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

/// Escapes a string for embedding inside JSON quotes.
std::string escape(std::string_view text);

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Throws std::runtime_error with an offset-tagged message on bad input.
Value parse(std::string_view text);

}  // namespace phifi::util::json

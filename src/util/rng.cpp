#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace phifi::util {

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // width == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (width == 0) ? next() : below(width);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // large-mean regime (beam fluence bookkeeping) where exactness of the
  // tail probabilities does not matter.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0) ? w : 0.0;
  if (total <= 0.0) return static_cast<std::size_t>(below(weights.size()));
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = (weights[i] > 0.0) ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // floating-point slack lands on the last entry
}

}  // namespace phifi::util

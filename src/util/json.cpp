#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace phifi::util::json {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not a ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (const bool* v = std::get_if<bool>(&data_)) return *v;
  type_error("bool");
}

double Value::as_double() const {
  if (const double* v = std::get_if<double>(&data_)) return *v;
  type_error("number");
}

std::int64_t Value::as_int() const {
  return static_cast<std::int64_t>(as_double());
}

const std::string& Value::as_string() const {
  if (const std::string* v = std::get_if<std::string>(&data_)) return *v;
  type_error("string");
}

const Value::Array& Value::as_array() const {
  if (const Array* v = std::get_if<Array>(&data_)) return *v;
  type_error("array");
}

const Value::Object& Value::as_object() const {
  if (const Object* v = std::get_if<Object>(&data_)) return *v;
  type_error("object");
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  if (Object* v = std::get_if<Object>(&data_)) return (*v)[key];
  type_error("object");
}

const Value* Value::find(const std::string& key) const {
  const Object* v = std::get_if<Object>(&data_);
  if (v == nullptr) return nullptr;
  const auto it = v->find(key);
  return it == v->end() ? nullptr : &it->second;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

void Value::push_back(Value value) {
  if (is_null()) data_ = Array{};
  if (Array* v = std::get_if<Array>(&data_)) {
    v->push_back(std::move(value));
    return;
  }
  type_error("array");
}

std::size_t Value::size() const {
  if (const Array* a = std::get_if<Array>(&data_)) return a->size();
  if (const Object* o = std::get_if<Object>(&data_)) return o->size();
  return 0;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers print without a fractional part (counts, indices); %.17g
  // round-trips any other double exactly.
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::fabs(value) < 9.0e15) {
    out += std::to_string(static_cast<std::int64_t>(value));
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void dump_value(std::string& out, const Value& value) {
  switch (value.type()) {
    case Value::Type::kNull: out += "null"; return;
    case Value::Type::kBool: out += value.as_bool() ? "true" : "false"; return;
    case Value::Type::kNumber: dump_number(out, value.as_double()); return;
    case Value::Type::kString:
      out += '"';
      out += escape(value.as_string());
      out += '"';
      return;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& element : value.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(out, element);
      }
      out += ']';
      return;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, element] : value.as_object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        dump_value(out, element);
      }
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw std::runtime_error("json: " + message + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(object));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(object));
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our own writer; decode them as-is if seen).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      return Value(value);
    } catch (const std::exception&) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace phifi::util::json

#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace phifi::util {

void Table::set_header(std::vector<std::string> header) {
  assert(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  assert(header_.empty() || row.size() == header_.size());
  if (!header_.empty()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::print_text(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell;
      if (i + 1 < widths.size()) {
        os << std::string(widths[i] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&os](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char c : cell) {
        if (c == '"') os << '"';
        os << c;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      emit_cell(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_interval(double point, double lo, double hi, int decimals) {
  return fmt(point, decimals) + " [" + fmt(lo, decimals) + ", " +
         fmt(hi, decimals) + "]";
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace phifi::util

// Lightweight non-owning 2D/3D array views plus an owning aligned buffer.
//
// Workload outputs are flat arrays with logical 1/2/3-dimensional shape;
// the spatial-pattern classifier (Sec. 4.3 of the paper) needs to map a flat
// mismatch index back to (row, col) or (x, y, z) coordinates. These views
// keep that mapping in one place. Layout is row-major: index = (z*H + y)*W + x
// with x the fastest dimension.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>

namespace phifi::util {

/// Logical shape of a flat output array. A 1D output has height=depth=1;
/// a 2D output has depth=1.
struct Shape {
  std::size_t width = 0;   ///< fastest-varying dimension (columns / x)
  std::size_t height = 1;  ///< rows / y
  std::size_t depth = 1;   ///< slices / z

  [[nodiscard]] constexpr std::size_t size() const {
    return width * height * depth;
  }
  [[nodiscard]] constexpr int rank() const {
    if (depth > 1) return 3;
    if (height > 1) return 2;
    return 1;
  }
  [[nodiscard]] constexpr bool operator==(const Shape&) const = default;
};

/// Coordinates of an element within a Shape.
struct Coord {
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t z = 0;

  [[nodiscard]] constexpr bool operator==(const Coord&) const = default;
};

/// Maps a flat index to coordinates under the given shape.
constexpr Coord unflatten(const Shape& shape, std::size_t index) {
  assert(index < shape.size());
  Coord c;
  c.x = index % shape.width;
  const std::size_t rest = index / shape.width;
  c.y = rest % shape.height;
  c.z = rest / shape.height;
  return c;
}

/// Maps coordinates to a flat index under the given shape.
constexpr std::size_t flatten(const Shape& shape, const Coord& c) {
  assert(c.x < shape.width && c.y < shape.height && c.z < shape.depth);
  return (c.z * shape.height + c.y) * shape.width + c.x;
}

/// Non-owning row-major 2D view over contiguous storage.
template <typename T>
class View2D {
 public:
  View2D() = default;
  View2D(T* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  View2D(std::span<T> data, std::size_t rows, std::size_t cols)
      : View2D(data.data(), rows, cols) {
    assert(data.size() >= rows * cols);
  }

  T& operator()(std::size_t row, std::size_t col) const {
    assert(row < rows_ && col < cols_);
    return data_[row * cols_ + col];
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] std::span<T> row(std::size_t r) const {
    assert(r < rows_);
    return {data_ + r * cols_, cols_};
  }
  [[nodiscard]] std::span<T> flat() const { return {data_, size()}; }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Non-owning row-major 3D view (z slowest, x fastest).
template <typename T>
class View3D {
 public:
  View3D() = default;
  View3D(T* data, std::size_t nz, std::size_t ny, std::size_t nx)
      : data_(data), nz_(nz), ny_(ny), nx_(nx) {}

  T& operator()(std::size_t z, std::size_t y, std::size_t x) const {
    assert(z < nz_ && y < ny_ && x < nx_);
    return data_[(z * ny_ + y) * nx_ + x];
  }

  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t size() const { return nz_ * ny_ * nx_; }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] std::span<T> flat() const { return {data_, size()}; }

 private:
  T* data_ = nullptr;
  std::size_t nz_ = 0;
  std::size_t ny_ = 0;
  std::size_t nx_ = 0;
};

/// Owning, cache-line-aligned, zero-initialized buffer. The 64-byte alignment
/// mirrors the 512-bit vector alignment the Knights Corner kernels assume.
template <typename T>
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t count) { resize(count); }

  void resize(std::size_t count) {
    if (count == 0) {
      storage_.reset();
      size_ = 0;
      return;
    }
    const std::size_t bytes =
        ((count * sizeof(T) + kAlignment - 1) / kAlignment) * kAlignment;
    T* raw = static_cast<T*>(
        ::operator new(bytes, std::align_val_t{kAlignment}));
    storage_.reset(raw);
    size_ = count;
    for (std::size_t i = 0; i < count; ++i) raw[i] = T{};
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return storage_.get(); }
  [[nodiscard]] const T* data() const { return storage_.get(); }
  T& operator[](std::size_t i) {
    assert(i < size_);
    return storage_.get()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return storage_.get()[i];
  }
  [[nodiscard]] std::span<T> span() { return {data(), size_}; }
  [[nodiscard]] std::span<const T> span() const { return {data(), size_}; }

 private:
  struct AlignedDelete {
    void operator()(T* ptr) const {
      ::operator delete(ptr, std::align_val_t{kAlignment});
    }
  };
  std::unique_ptr<T, AlignedDelete> storage_;
  std::size_t size_ = 0;
};

}  // namespace phifi::util

// Minimal leveled logging. Campaign supervisors run thousands of forked
// trials; logging must be cheap, line-buffered, and safe to use from the
// parent between forks (children inherit the level but write to stderr
// independently, so interleaving is at line granularity).
#pragma once

#include <sstream>
#include <string>

namespace phifi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Defaults to kWarn so
/// tests and benches stay quiet; set PHIFI_LOG=debug|info|warn|error|off in
/// the environment or call set_log_level to change.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Reads PHIFI_LOG and PHIFI_LOG_PLAIN from the environment once and
/// applies them.
void init_log_from_env();

/// Plain mode drops the ISO-8601 timestamp + PID prefix (golden-output
/// tests set PHIFI_LOG_PLAIN=1; interactive campaigns keep the prefix so
/// interleaved parent/child lines from forked trials stay attributable).
void set_log_plain(bool plain);
bool log_plain();

/// Writes one formatted line to stderr if `level` passes the threshold:
///   2026-08-07T12:34:56.789Z [phifi WARN 4242] message
/// or, in plain mode: [phifi WARN] message
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace phifi::util

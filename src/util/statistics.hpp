// Statistics helpers used by the FIT-rate and PVF analyses: streaming
// moments, binomial proportion confidence intervals (Normal/Wald and Wilson,
// the paper reports Normal 95% intervals), and Poisson rate intervals for
// beam error counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace phifi::util {

/// Welford streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval [lo, hi] around a point estimate.
struct Interval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double half_width() const { return (hi - lo) / 2.0; }
  /// Half-width relative to the point estimate (the paper keeps this < 10%).
  [[nodiscard]] double relative_half_width() const {
    return point == 0.0 ? 0.0 : half_width() / point;
  }
};

/// z quantile for a two-sided confidence level (e.g. 0.95 -> 1.95996).
/// Uses the Acklam inverse-normal approximation (|error| < 1.15e-9).
double normal_quantile_two_sided(double confidence);

/// Normal-approximation (Wald) interval for a binomial proportion, as used
/// by the paper for its "Normal's 95% confidence intervals".
Interval wald_interval(std::uint64_t successes, std::uint64_t trials,
                       double confidence = 0.95);

/// Wilson score interval; better behaved for small counts / extreme p.
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double confidence = 0.95);

/// Normal-approximation interval for a Poisson count (beam error counts are
/// Poisson in the fluence). Returns the interval on the count itself; the
/// caller scales by fluence to get a rate.
Interval poisson_interval(std::uint64_t count, double confidence = 0.95);

/// Standard normal CDF.
double normal_cdf(double x);

/// Pooled two-proportion z-test (did the SDC rate move between two
/// campaigns?). z is signed (positive when sample 1's rate is higher);
/// p_value is two-sided. Degenerate inputs (an empty sample, or a pooled
/// proportion of exactly 0 or 1, which forces equal rates) return
/// {z = 0, p_value = 1}.
struct TwoProportionTest {
  double z = 0.0;
  double p_value = 1.0;
};
TwoProportionTest two_proportion_z_test(std::uint64_t successes1,
                                        std::uint64_t trials1,
                                        std::uint64_t successes2,
                                        std::uint64_t trials2);

/// Pearson chi-squared test statistic for observed vs expected counts.
/// Returns the statistic; degrees of freedom are bins-1.
double chi_squared_statistic(std::span<const std::uint64_t> observed,
                             std::span<const double> expected);

/// Linear interpolation of y at x over sorted sample points (xs, ys).
/// Clamps outside the domain. Requires xs sorted ascending, same length.
double interpolate(std::span<const double> xs, std::span<const double> ys,
                   double x);

}  // namespace phifi::util

// Bit-level helpers shared by the fault models (Sec. 5.2) and the ECC model.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace phifi::util {

/// Flips bit `bit_index` (0 = LSB of byte 0) within a byte buffer.
inline void flip_bit(std::span<std::byte> bytes, std::size_t bit_index) {
  const std::size_t byte = bit_index / 8;
  const unsigned shift = static_cast<unsigned>(bit_index % 8);
  bytes[byte] ^= static_cast<std::byte>(1u << shift);
}

/// Reads bit `bit_index` from a byte buffer.
inline bool read_bit(std::span<const std::byte> bytes, std::size_t bit_index) {
  const std::size_t byte = bit_index / 8;
  const unsigned shift = static_cast<unsigned>(bit_index % 8);
  return (static_cast<unsigned>(bytes[byte]) >> shift) & 1u;
}

/// Number of bits that differ between two equally-sized buffers.
inline std::size_t hamming_distance(std::span<const std::byte> a,
                                    std::span<const std::byte> b) {
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    distance += static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(a[i] ^ b[i])));
  }
  return distance;
}

/// Bit-level reinterpretation helpers (memcpy-based, no aliasing UB).
inline std::uint32_t float_bits(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

inline float bits_to_float(std::uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

inline std::uint64_t double_bits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

inline double bits_to_double(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace phifi::util

// Bump arena for per-trial scratch allocations.
//
// The trial hot loop (site selection, phase scratch) historically allocated
// short-lived vectors on every injection. In the fork-server fast path each
// trial child is a fresh COW image whose heap metadata is shared with the
// template until first touch — every malloc both costs time and dirties
// pages. A bump arena turns that into pointer arithmetic over one buffer
// allocated once (in the template / warm parent, so children inherit it)
// and rewound per trial.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

namespace phifi::util {

/// Fixed-capacity bump allocator. Not thread-safe: one arena per trial
/// child (which is single-threaded up to the workload run).
class BumpArena {
 public:
  explicit BumpArena(std::size_t capacity)
      : buffer_(capacity > 0 ? std::make_unique<std::byte[]>(capacity)
                             : nullptr),
        capacity_(capacity) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two), or nullptr
  /// when the arena is exhausted — callers fall back to the heap, so an
  /// undersized arena costs speed, never correctness.
  void* allocate(std::size_t size, std::size_t align) {
    const std::size_t offset = (used_ + (align - 1)) & ~(align - 1);
    if (offset + size > capacity_ || offset + size < offset) return nullptr;
    used_ = offset + size;
    return buffer_.get() + offset;
  }

  /// Typed allocation: a span of `count` default-constructible Ts, or an
  /// empty span when exhausted.
  template <typename T>
  [[nodiscard]] std::span<T> allocate_span(std::size_t count) {
    void* p = allocate(count * sizeof(T), alignof(T));
    if (p == nullptr) return {};
    return {static_cast<T*>(p), count};
  }

  /// Frees everything at once; previously returned pointers become invalid.
  void rewind() { used_ = 0; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return used_; }

 private:
  std::unique_ptr<std::byte[]> buffer_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace phifi::util

#include "util/log.hpp"

#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace phifi::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_plain{false};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void init_log_from_env() {
  const char* plain = std::getenv("PHIFI_LOG_PLAIN");
  set_log_plain(plain != nullptr && std::strcmp(plain, "1") == 0);
  const char* env = std::getenv("PHIFI_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::kOff);
}

void set_log_plain(bool plain) {
  g_plain.store(plain, std::memory_order_relaxed);
}

bool log_plain() { return g_plain.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  if (log_plain()) {
    std::fprintf(stderr, "[phifi %s] %s\n", level_name(level),
                 message.c_str());
    return;
  }
  // ISO-8601 UTC timestamp with milliseconds plus the writer's PID: forked
  // trial children inherit stderr, so parent and child lines interleave and
  // the PID is what makes each line attributable. One fprintf keeps the
  // line-granularity atomicity the header promises.
  timeval tv{};
  ::gettimeofday(&tv, nullptr);
  std::tm tm{};
  const time_t seconds = tv.tv_sec;
  ::gmtime_r(&seconds, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%S", &tm);
  std::fprintf(stderr, "%s.%03ldZ [phifi %s %d] %s\n", stamp,
               static_cast<long>(tv.tv_usec / 1000), level_name(level),
               static_cast<int>(::getpid()), message.c_str());
}

}  // namespace phifi::util

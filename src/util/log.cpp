#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace phifi::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void init_log_from_env() {
  const char* env = std::getenv("PHIFI_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::kOff);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[phifi %s] %s\n", level_name(level), message.c_str());
}

}  // namespace phifi::util

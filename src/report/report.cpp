#include "report/report.hpp"

#include <sstream>

#include "analysis/checkpoint_model.hpp"
#include "analysis/criticality.hpp"
#include "analysis/fit.hpp"
#include "analysis/pvf.hpp"
#include "analysis/spatial.hpp"
#include "util/table.hpp"

namespace phifi::report {

using analysis::CategoryCriticality;
using analysis::CheckpointPlan;
using analysis::ErrorPattern;
using analysis::criticality_table;
using analysis::due_pvf;
using analysis::kPatternCount;
using analysis::machine_mtbf_days;
using analysis::machine_mtbf_seconds;
using analysis::optimal_checkpoint;
using analysis::recommend_mitigation;
using analysis::sdc_pvf;


namespace {

void render_outcome_row(std::ostringstream& os, const std::string& label,
                        const fi::OutcomeTally& tally) {
  os << "| " << label << " | " << tally.total() << " | "
     << util::fmt_percent(tally.masked_rate()) << " | "
     << util::fmt_percent(tally.sdc_rate()) << " | "
     << util::fmt_percent(tally.due_rate()) << " |\n";
}

}  // namespace

std::string render_report(const ReportInputs& inputs) {
  const fi::CampaignResult& campaign = *inputs.campaign;
  std::ostringstream os;

  os << "# Reliability report: " << campaign.workload << "\n\n";
  os << "Fault-injection campaign of " << campaign.overall.total()
     << " injected faults (" << campaign.not_injected
     << " retried), CAROL-FI-style selection.\n\n";

  os << "## Outcomes\n\n"
     << "| slice | injections | masked | SDC | DUE |\n"
     << "|---|---|---|---|---|\n";
  render_outcome_row(os, "overall", campaign.overall);
  for (fi::FaultModel model : fi::kAllFaultModels) {
    render_outcome_row(
        os, std::string("model ") + std::string(to_string(model)),
        campaign.by_model[static_cast<std::size_t>(model)]);
  }
  os << "\n";

  os << "## Execution-time windows\n\n"
     << "| window | injections | SDC PVF | DUE PVF |\n"
     << "|---|---|---|---|\n";
  for (std::size_t w = 0; w < campaign.by_window.size(); ++w) {
    const auto& tally = campaign.by_window[w];
    os << "| " << (w + 1) << "/" << campaign.by_window.size() << " | "
       << tally.total() << " | " << util::fmt(sdc_pvf(tally).point, 1)
       << "% | " << util::fmt(due_pvf(tally).point, 1) << "% |\n";
  }
  os << "\n";

  os << "## Code-portion criticality\n\n"
     << "| portion | injections | SDC rate | DUE rate | recommended "
        "mitigation |\n"
     << "|---|---|---|---|---|\n";
  for (const CategoryCriticality& row : criticality_table(campaign, 5)) {
    os << "| " << row.category << " | " << row.injections << " | "
       << util::fmt_percent(row.sdc_rate) << " | "
       << util::fmt_percent(row.due_rate) << " | "
       << recommend_mitigation(row, inputs.algebraic) << " |\n";
  }
  os << "\n";

  if (inputs.counters != nullptr && inputs.counters->bytes_total() > 0) {
    const phi::CounterSnapshot& counters = *inputs.counters;
    os << "## Workload character (golden run)\n\n"
       << "| counter | value |\n"
       << "|---|---|\n"
       << "| flops | " << counters.flops << " |\n"
       << "| bytes read | " << counters.bytes_read << " |\n"
       << "| bytes written | " << counters.bytes_written << " |\n"
       << "| bytes total | " << counters.bytes_total() << " |\n"
       << "| arithmetic intensity [flop/B] | "
       << util::fmt(counters.arithmetic_intensity(), 2) << " |\n"
       << "| kernel launches | " << counters.kernel_launches << " |\n";
    if (inputs.golden_seconds > 0.0) {
      os << "| GFLOP/s | "
         << util::fmt(static_cast<double>(counters.flops) /
                          inputs.golden_seconds / 1e9,
                      2)
         << " |\n";
    }
    os << "\nHigher arithmetic intensity means longer data residency in "
          "registers and cache relative to memory traffic - the paper's "
          "Sec. 3.2/4.2 mechanism for why compute-bound codes show "
          "different FIT rates than memory-bound ones.\n\n";
  }

  if (inputs.beam != nullptr) {
    const radiation::BeamResult& beam = *inputs.beam;
    os << "## Beam experiment\n\n"
       << "SDC FIT: **" << util::fmt(beam.sdc_fit.fit, 1) << "** ["
       << util::fmt(beam.sdc_fit.fit_lo, 1) << ", "
       << util::fmt(beam.sdc_fit.fit_hi, 1) << "], DUE FIT: **"
       << util::fmt(beam.due_fit.fit, 1) << "** ["
       << util::fmt(beam.due_fit.fit_lo, 1) << ", "
       << util::fmt(beam.due_fit.fit_hi, 1) << "] at sea level ("
       << beam.runs << " runs, fluence " << util::fmt(beam.fluence, 0)
       << " n/cm^2).\n\n";

    os << "Spatial patterns of the SDCs: ";
    for (int p = 1; p < kPatternCount; ++p) {
      const auto pattern = static_cast<ErrorPattern>(p);
      if (p > 1) os << ", ";
      os << to_string(pattern) << " "
         << util::fmt_percent(beam.patterns.fraction(pattern));
    }
    os << ".\n\n";

    os << "Machine-scale view (" << util::fmt(inputs.trinity_boards, 0)
       << " boards): one SDC every "
       << util::fmt(machine_mtbf_days(beam.sdc_fit.fit,
                                      inputs.trinity_boards),
                    1)
       << " days, one DUE every "
       << util::fmt(machine_mtbf_days(beam.due_fit.fit,
                                      inputs.trinity_boards),
                    1)
       << " days.\n\n";

    const double mtbf = machine_mtbf_seconds(beam.due_fit.fit,
                                             inputs.trinity_boards);
    if (mtbf > 0.0) {
      const CheckpointPlan plan =
          optimal_checkpoint(mtbf, inputs.checkpoint_cost_seconds);
      os << "With a " << util::fmt(inputs.checkpoint_cost_seconds, 0)
         << " s checkpoint cost, the Young/Daly-optimal interval against "
            "this DUE rate is "
         << util::fmt(plan.interval_seconds / 60.0, 1) << " min at "
         << util::fmt_percent(plan.waste_fraction)
         << " machine-time waste.\n\n";
    }

    os << "Imprecise-computing leverage: accepting 0.5% / 2% relative "
          "error removes "
       << util::fmt(beam.tolerance.reduction_percent(0.005), 1) << "% / "
       << util::fmt(beam.tolerance.reduction_percent(0.02), 1)
       << "% of the SDC FIT.\n";
  }
  return os.str();
}

}  // namespace phifi::report

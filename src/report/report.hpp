// Markdown reliability report: one human-readable document per campaign,
// combining the outcome split, fault-model PVFs, time-window PVFs, the
// ranked criticality table with mitigation advice, and (when available)
// beam FIT rates with their machine-scale implications. This is the
// deliverable a CAROL-FI user hands to the application team.
#pragma once

#include <optional>
#include <string>

#include "core/campaign.hpp"
#include "phi/counters.hpp"
#include "radiation/beam_campaign.hpp"

namespace phifi::report {

struct ReportInputs {
  const fi::CampaignResult* campaign = nullptr;      ///< required
  const radiation::BeamResult* beam = nullptr;       ///< optional
  /// Device counters of the fault-free (golden) run: arithmetic intensity
  /// is the paper's Sec. 3.2/4.2 explainer for cross-workload FIT
  /// differences. Optional.
  const phi::CounterSnapshot* counters = nullptr;
  double golden_seconds = 0.0;  ///< golden run wall time, for GFLOP/s
  bool algebraic = false;  ///< workload class, for mitigation advice
  double trinity_boards = 19000.0;
  /// Checkpoint cost assumption for the interval recommendation, seconds.
  double checkpoint_cost_seconds = 60.0;
};

/// Renders the report as GitHub-flavored markdown.
std::string render_report(const ReportInputs& inputs);

}  // namespace phifi::report

#include "cli/config.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace phifi::cli {

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("config line " + std::to_string(line) + ": " +
                           message);
}

double parse_double(int line, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + value + "'");
  }
}

std::uint64_t parse_u64(int line, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    fail(line, "expected an unsigned integer, got '" + value + "'");
  }
}

fi::SelectionPolicy parse_policy(int line, const std::string& value) {
  if (value == "carol-fi") return fi::SelectionPolicy::kCarolFi;
  if (value == "bytes-weighted") return fi::SelectionPolicy::kBytesWeighted;
  if (value == "global-bytes") {
    return fi::SelectionPolicy::kGlobalBytesWeighted;
  }
  if (value == "worker-frame") return fi::SelectionPolicy::kWorkerFrameOnly;
  fail(line, "unknown policy '" + value + "'");
}

std::vector<fi::FaultModel> parse_models(int line, const std::string& value) {
  std::vector<fi::FaultModel> models;
  std::stringstream stream(value);
  std::string token;
  while (std::getline(stream, token, '+')) {
    token = trim(token);
    bool found = false;
    for (fi::FaultModel model : fi::kAllFaultModels) {
      if (to_string(model) == token) {
        models.push_back(model);
        found = true;
      }
    }
    if (!found) fail(line, "unknown fault model '" + token + "'");
  }
  if (models.empty()) fail(line, "empty fault model list");
  return models;
}

}  // namespace

fi::SupervisorConfig RunnerConfig::supervisor_config() const {
  fi::SupervisorConfig config;
  config.device_os_threads = device_os_threads;
  config.timeout_factor = timeout_factor;
  config.min_timeout_seconds = min_timeout_seconds;
  config.input_seed = input_seed;
  config.poll = watchdog_poll;
  config.kill_grace_seconds = kill_grace_seconds;
  config.child_address_space_mb = child_address_space_mb;
  config.child_cpu_seconds = child_cpu_seconds;
  config.heartbeat_divisions = heartbeat_divisions;
  config.stall_timeout_seconds = stall_timeout_seconds;
  config.trial_fast_path = trial_fast_path;
  return config;
}

fi::CampaignConfig RunnerConfig::campaign_config() const {
  fi::CampaignConfig config;
  config.trials = trials;
  config.seed = seed;
  config.policy = policy;
  config.models = models;
  config.earliest_fraction = earliest_fraction;
  config.latest_fraction = latest_fraction;
  config.jobs = jobs;
  config.journal_path = journal_file;
  config.resume = resume;
  config.journal_fsync = journal_fsync;
  config.journal_batch = journal_batch;
  config.stop_flag = stop_flag;
  config.max_consecutive_failures = max_consecutive_failures;
  config.stop_ci_width = stop_ci_width;
  return config;
}

radiation::BeamConfig RunnerConfig::beam_config() const {
  radiation::BeamConfig config;
  config.flux = flux;
  config.seed = seed;
  config.min_sdc = min_sdc;
  config.min_due = min_due;
  config.max_executions = max_executions;
  return config;
}

RunnerConfig parse_config(std::istream& is) {
  RunnerConfig config;
  std::string raw;
  int line_number = 0;
  while (std::getline(is, raw)) {
    ++line_number;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail(line_number, "expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_number, "empty value for '" + key + "'");

    if (key == "mode") {
      if (value == "inject") config.mode = RunMode::kInject;
      else if (value == "beam") config.mode = RunMode::kBeam;
      else fail(line_number, "mode must be 'inject' or 'beam'");
    } else if (key == "workload") {
      config.workload = value;
    } else if (key == "seed") {
      config.seed = parse_u64(line_number, value);
    } else if (key == "log_file") {
      config.log_file = value;
    } else if (key == "report_file") {
      config.report_file = value;
    } else if (key == "journal_file") {
      config.journal_file = value;
    } else if (key == "resume") {
      if (value == "true") config.resume = true;
      else if (value == "false") config.resume = false;
      else fail(line_number, "resume must be 'true' or 'false'");
    } else if (key == "trace_file") {
      config.trace_file = value;
    } else if (key == "metrics_file") {
      config.metrics_file = value;
    } else if (key == "profile_file") {
      config.profile_file = value;
    } else if (key == "metrics_format") {
      if (value == "json") config.metrics_format = MetricsFormat::kJson;
      else if (value == "openmetrics") {
        config.metrics_format = MetricsFormat::kOpenMetrics;
      } else {
        fail(line_number, "metrics_format must be 'json' or 'openmetrics'");
      }
    } else if (key == "history_file") {
      config.history_file = value;
    } else if (key == "progress_seconds") {
      config.progress_seconds = parse_double(line_number, value);
    } else if (key == "journal_fsync") {
      if (value == "every-record") {
        config.journal_fsync = fi::JournalFsync::kEveryRecord;
      } else if (value == "on-close") {
        config.journal_fsync = fi::JournalFsync::kOnClose;
      } else if (value == "batch") {
        config.journal_fsync = fi::JournalFsync::kBatch;
      } else {
        fail(line_number,
             "journal_fsync must be 'every-record', 'on-close', or 'batch'");
      }
    } else if (key == "journal_batch_records") {
      config.journal_batch.max_records = parse_u64(line_number, value);
      if (config.journal_batch.max_records == 0) {
        fail(line_number, "journal_batch_records must be at least 1");
      }
    } else if (key == "journal_batch_ms") {
      config.journal_batch.max_delay_ms = parse_double(line_number, value);
    } else if (key == "trials") {
      config.trials = parse_u64(line_number, value);
    } else if (key == "jobs") {
      config.jobs = static_cast<unsigned>(parse_u64(line_number, value));
      if (config.jobs == 0) fail(line_number, "jobs must be at least 1");
    } else if (key == "stop_ci_width") {
      config.stop_ci_width = parse_double(line_number, value);
      if (config.stop_ci_width < 0.0 || config.stop_ci_width >= 0.5) {
        fail(line_number,
             "stop_ci_width must be in [0, 0.5) (a proportion half-width)");
      }
    } else if (key == "policy") {
      config.policy = parse_policy(line_number, value);
    } else if (key == "models") {
      config.models = parse_models(line_number, value);
    } else if (key == "earliest_fraction") {
      config.earliest_fraction = parse_double(line_number, value);
    } else if (key == "latest_fraction") {
      config.latest_fraction = parse_double(line_number, value);
    } else if (key == "flux") {
      config.flux = parse_double(line_number, value);
    } else if (key == "min_sdc") {
      config.min_sdc = parse_u64(line_number, value);
    } else if (key == "min_due") {
      config.min_due = parse_u64(line_number, value);
    } else if (key == "max_executions") {
      config.max_executions = parse_u64(line_number, value);
    } else if (key == "device_os_threads") {
      config.device_os_threads =
          static_cast<unsigned>(parse_u64(line_number, value));
    } else if (key == "timeout_factor") {
      config.timeout_factor = parse_double(line_number, value);
    } else if (key == "min_timeout_seconds") {
      config.min_timeout_seconds = parse_double(line_number, value);
    } else if (key == "input_seed") {
      config.input_seed = parse_u64(line_number, value);
    } else if (key == "watchdog_poll") {
      if (value == "fixed") config.watchdog_poll = fi::WatchdogPoll::kFixed;
      else if (value == "adaptive") {
        config.watchdog_poll = fi::WatchdogPoll::kAdaptive;
      } else {
        fail(line_number, "watchdog_poll must be 'fixed' or 'adaptive'");
      }
    } else if (key == "kill_grace_seconds") {
      config.kill_grace_seconds = parse_double(line_number, value);
    } else if (key == "child_address_space_mb") {
      config.child_address_space_mb = parse_u64(line_number, value);
    } else if (key == "child_cpu_seconds") {
      config.child_cpu_seconds =
          static_cast<unsigned>(parse_u64(line_number, value));
    } else if (key == "heartbeat_divisions") {
      config.heartbeat_divisions =
          static_cast<unsigned>(parse_u64(line_number, value));
    } else if (key == "stall_timeout_seconds") {
      config.stall_timeout_seconds = parse_double(line_number, value);
    } else if (key == "trial_fast_path") {
      if (value == "true") config.trial_fast_path = true;
      else if (value == "false") config.trial_fast_path = false;
      else fail(line_number, "trial_fast_path must be 'true' or 'false'");
    } else if (key == "max_consecutive_failures") {
      config.max_consecutive_failures = parse_u64(line_number, value);
    } else if (key == "fabric_listen") {
      config.fabric_listen = value;
    } else if (key == "fabric_connect") {
      config.fabric_connect = value;
    } else if (key == "fabric_shard") {
      config.fabric_shard = value;
    } else if (key == "fabric_ledger") {
      config.fabric_ledger = value;
    } else if (key == "fabric_lease_size") {
      config.fabric_lease_size = parse_u64(line_number, value);
      if (config.fabric_lease_size == 0) {
        fail(line_number, "fabric_lease_size must be at least 1");
      }
    } else if (key == "fabric_heartbeat_seconds") {
      config.fabric_heartbeat_seconds = parse_double(line_number, value);
    } else if (key == "fabric_lease_timeout_seconds") {
      config.fabric_lease_timeout_seconds = parse_double(line_number, value);
    } else if (key == "fabric_reconnect_ms") {
      config.fabric_reconnect_ms = parse_double(line_number, value);
    } else if (key == "fabric_serve_metrics") {
      config.fabric_serve_metrics = value;
    } else if (key == "fabric_stats_seconds") {
      config.fabric_stats_seconds = parse_double(line_number, value);
      if (config.fabric_stats_seconds < 0.0) {
        fail(line_number, "fabric_stats_seconds must be >= 0 (0 = off)");
      }
    } else {
      fail(line_number, "unknown key '" + key + "'");
    }
  }
  if (config.earliest_fraction < 0.0 || config.latest_fraction > 1.0 ||
      config.earliest_fraction >= config.latest_fraction) {
    throw std::runtime_error(
        "config: injection window must satisfy 0 <= earliest < latest <= 1");
  }
  if (!config.fabric_listen.empty() && !config.fabric_connect.empty()) {
    throw std::runtime_error(
        "config: fabric_listen (coordinator) and fabric_connect (worker) "
        "are mutually exclusive");
  }
  if (!config.fabric_connect.empty() && config.fabric_shard.empty()) {
    throw std::runtime_error(
        "config: a fabric worker needs fabric_shard (its shard journal)");
  }
  if (!config.fabric_serve_metrics.empty() && config.fabric_listen.empty()) {
    throw std::runtime_error(
        "config: fabric_serve_metrics requires fabric_listen (the "
        "coordinator serves the scrape endpoint)");
  }
  return config;
}

std::string format_config(const RunnerConfig& config) {
  std::ostringstream os;
  os << "mode = " << (config.mode == RunMode::kBeam ? "beam" : "inject")
     << "\n"
     << "workload = " << config.workload << "\n"
     << "seed = " << config.seed << "\n";
  if (!config.log_file.empty()) os << "log_file = " << config.log_file << "\n";
  if (!config.report_file.empty()) {
    os << "report_file = " << config.report_file << "\n";
  }
  if (!config.journal_file.empty()) {
    os << "journal_file = " << config.journal_file << "\n";
  }
  if (config.resume) os << "resume = true\n";
  if (config.journal_fsync == fi::JournalFsync::kOnClose) {
    os << "journal_fsync = on-close\n";
  } else if (config.journal_fsync == fi::JournalFsync::kBatch) {
    os << "journal_fsync = batch\n"
       << "journal_batch_records = " << config.journal_batch.max_records
       << "\n"
       << "journal_batch_ms = " << config.journal_batch.max_delay_ms << "\n";
  }
  if (!config.trace_file.empty()) {
    os << "trace_file = " << config.trace_file << "\n";
  }
  if (!config.metrics_file.empty()) {
    os << "metrics_file = " << config.metrics_file << "\n";
  }
  if (!config.profile_file.empty()) {
    os << "profile_file = " << config.profile_file << "\n";
  }
  if (config.metrics_format == MetricsFormat::kOpenMetrics) {
    os << "metrics_format = openmetrics\n";
  }
  if (!config.history_file.empty()) {
    os << "history_file = " << config.history_file << "\n";
  }
  if (config.progress_seconds > 0.0) {
    os << "progress_seconds = " << config.progress_seconds << "\n";
  }
  os << "trials = " << config.trials << "\n"
     << "jobs = " << config.jobs << "\n";
  if (config.stop_ci_width > 0.0) {
    os << "stop_ci_width = " << config.stop_ci_width << "\n";
  }
  os << "policy = " << to_string(config.policy) << "\n"
     << "models = ";
  for (std::size_t i = 0; i < config.models.size(); ++i) {
    if (i) os << " + ";
    os << to_string(config.models[i]);
  }
  os << "\n"
     << "earliest_fraction = " << config.earliest_fraction << "\n"
     << "latest_fraction = " << config.latest_fraction << "\n"
     << "flux = " << config.flux << "\n"
     << "min_sdc = " << config.min_sdc << "\n"
     << "min_due = " << config.min_due << "\n"
     << "max_executions = " << config.max_executions << "\n"
     << "device_os_threads = " << config.device_os_threads << "\n"
     << "timeout_factor = " << config.timeout_factor << "\n"
     << "min_timeout_seconds = " << config.min_timeout_seconds << "\n"
     << "input_seed = " << config.input_seed << "\n"
     << "watchdog_poll = "
     << (config.watchdog_poll == fi::WatchdogPoll::kFixed ? "fixed"
                                                          : "adaptive")
     << "\n"
     << "kill_grace_seconds = " << config.kill_grace_seconds << "\n"
     << "child_address_space_mb = " << config.child_address_space_mb << "\n"
     << "child_cpu_seconds = " << config.child_cpu_seconds << "\n"
     << "heartbeat_divisions = " << config.heartbeat_divisions << "\n"
     << "stall_timeout_seconds = " << config.stall_timeout_seconds << "\n"
     << "trial_fast_path = " << (config.trial_fast_path ? "true" : "false")
     << "\n"
     << "max_consecutive_failures = " << config.max_consecutive_failures
     << "\n";
  if (!config.fabric_listen.empty()) {
    os << "fabric_listen = " << config.fabric_listen << "\n";
  }
  if (!config.fabric_connect.empty()) {
    os << "fabric_connect = " << config.fabric_connect << "\n";
  }
  if (!config.fabric_shard.empty()) {
    os << "fabric_shard = " << config.fabric_shard << "\n";
  }
  if (!config.fabric_ledger.empty()) {
    os << "fabric_ledger = " << config.fabric_ledger << "\n";
  }
  if (config.fabric_lease_size != 32) {
    os << "fabric_lease_size = " << config.fabric_lease_size << "\n";
  }
  if (config.fabric_heartbeat_seconds != 1.0) {
    os << "fabric_heartbeat_seconds = " << config.fabric_heartbeat_seconds
       << "\n";
  }
  if (config.fabric_lease_timeout_seconds != 5.0) {
    os << "fabric_lease_timeout_seconds = "
       << config.fabric_lease_timeout_seconds << "\n";
  }
  if (config.fabric_reconnect_ms != 200.0) {
    os << "fabric_reconnect_ms = " << config.fabric_reconnect_ms << "\n";
  }
  if (!config.fabric_serve_metrics.empty()) {
    os << "fabric_serve_metrics = " << config.fabric_serve_metrics << "\n";
  }
  if (config.fabric_stats_seconds != 1.0) {
    os << "fabric_stats_seconds = " << config.fabric_stats_seconds << "\n";
  }
  return os.str();
}

}  // namespace phifi::cli

// Configuration-file-driven campaigns, mirroring the paper's artifact
// workflow (Appendix A.4): "a configuration file is produced with all the
// information needed by the fault injector; the fault injector is executed
// with the configuration file as an argument and how many times the
// experiment should be repeated."
//
// The format is a flat `key = value` file with `#` comments. Unknown keys
// are an error (typos in reliability campaigns are expensive).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "radiation/beam_campaign.hpp"

namespace phifi::cli {

enum class RunMode { kInject, kBeam };

/// How --metrics-out is rendered: the JSON registry snapshot, or the
/// Prometheus/OpenMetrics text exposition (textfile-collector scrapeable).
enum class MetricsFormat { kJson, kOpenMetrics };

struct RunnerConfig {
  RunMode mode = RunMode::kInject;
  std::string workload = "DGEMM";
  std::uint64_t seed = 1;
  std::string log_file;     ///< per-trial CSV log ("" = no log)
  std::string report_file;  ///< markdown reliability report ("" = none)

  // Durability: write-ahead journal + resume (see core/campaign_journal).
  std::string journal_file;  ///< per-trial journal ("" = no journal)
  bool resume = false;       ///< replay journal_file and continue
  fi::JournalFsync journal_fsync = fi::JournalFsync::kEveryRecord;
  fi::JournalBatchPolicy journal_batch;  ///< group-commit knobs (kBatch)

  // Telemetry (see src/telemetry/, docs/TELEMETRY.md, docs/OBSERVATORY.md).
  std::string trace_file;    ///< NDJSON trial trace ("" = no trace)
  std::string metrics_file;  ///< final metrics snapshot ("" = none)
  /// Trial latency anatomy profile: one NDJSON `profile` record per
  /// committed attempt ("" = profiler off; see docs/PROFILING.md).
  std::string profile_file;
  MetricsFormat metrics_format = MetricsFormat::kJson;
  double progress_seconds = 0.0;  ///< live progress interval (0 = off)
  /// Longitudinal ledger: append one campaign-summary NDJSON record per
  /// completed campaign ("" = off). phifi_parse --drift compares two.
  std::string history_file;

  // Injection-mode settings.
  std::size_t trials = 1000;
  unsigned jobs = 1;  ///< forked trials in flight (--jobs / `jobs = N`)
  /// Sequential stopping epsilon: end the campaign once the SDC-proportion
  /// Wilson CI half-width is <= this (proportion scale; 0.005 = ±0.5
  /// percentage points; 0 = run the full trial count).
  double stop_ci_width = 0.0;
  fi::SelectionPolicy policy = fi::SelectionPolicy::kCarolFi;
  std::vector<fi::FaultModel> models{
      fi::FaultModel::kSingle, fi::FaultModel::kDouble,
      fi::FaultModel::kRandom, fi::FaultModel::kZero};
  double earliest_fraction = 0.01;
  double latest_fraction = 0.99;

  // Beam-mode settings.
  double flux = 2.0e6;
  std::uint64_t min_sdc = 100;
  std::uint64_t min_due = 40;
  std::uint64_t max_executions = 20000;

  // Supervisor settings.
  unsigned device_os_threads = 1;
  double timeout_factor = 30.0;
  double min_timeout_seconds = 1.0;
  std::uint64_t input_seed = 0x900d5eedULL;
  fi::WatchdogPoll watchdog_poll = fi::WatchdogPoll::kAdaptive;
  double kill_grace_seconds = 0.25;
  std::size_t child_address_space_mb = 0;  ///< 0 = unlimited
  unsigned child_cpu_seconds = 0;          ///< 0 = unlimited
  unsigned heartbeat_divisions = 16;       ///< 0 = heartbeat off
  double stall_timeout_seconds = 0.0;      ///< 0 = no early stall kill
  /// Fork-server trial fast path (--trial-fast-path / `trial_fast_path`):
  /// setup amortized across trials, golden shared via a sealed read-only
  /// mapping. Tallies are bit-identical to the legacy path.
  bool trial_fast_path = false;

  // Campaign failure handling.
  std::size_t max_consecutive_failures = 5;

  // Fabric: shard one campaign across worker processes (docs/FABRIC.md).
  // Role comes from which address is set: fabric_listen makes this process
  // the coordinator, fabric_connect a worker. Both set is an error.
  std::string fabric_listen;   ///< coordinator listen address
  std::string fabric_connect;  ///< worker: coordinator address
  std::string fabric_shard;    ///< worker: shard journal path (required)
  std::string fabric_ledger;   ///< coordinator: lease ledger ("" = memory)
  std::uint64_t fabric_lease_size = 32;
  double fabric_heartbeat_seconds = 1.0;
  double fabric_lease_timeout_seconds = 5.0;
  double fabric_reconnect_ms = 200.0;
  /// Coordinator: live scrape endpoint ("tcp:host:port" or "unix:/path";
  /// "" = off). Serves /metrics, /campaign.json, /healthz while the
  /// campaign runs (docs/FLEET_OBSERVABILITY.md).
  std::string fabric_serve_metrics;
  /// Worker: STATS snapshot interval in seconds (0 = off). Snapshots ride
  /// the heartbeat timer, never the trial hot path.
  double fabric_stats_seconds = 1.0;

  /// Cooperative shutdown flag (not a config-file key): wired by phifi_run
  /// to its SIGINT/SIGTERM handlers.
  const std::atomic<bool>* stop_flag = nullptr;

  [[nodiscard]] fi::SupervisorConfig supervisor_config() const;
  [[nodiscard]] fi::CampaignConfig campaign_config() const;
  [[nodiscard]] radiation::BeamConfig beam_config() const;
};

/// Parses a config stream. Throws std::runtime_error with a line-numbered
/// message on syntax errors, unknown keys, or invalid values.
RunnerConfig parse_config(std::istream& is);

/// Serializes a config back to the file format (for golden tests and for
/// generating template files).
std::string format_config(const RunnerConfig& config);

}  // namespace phifi::cli

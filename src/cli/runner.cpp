#include "cli/runner.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "analysis/pvf.hpp"
#include "core/trial_log.hpp"
#include "report/report.hpp"
#include "radiation/sensitivity.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace phifi::cli {

RunSummary run_from_config(const RunnerConfig& config, std::ostream& out) {
  const fi::WorkloadFactory factory = work::find_workload(config.workload);
  if (factory == nullptr) {
    throw std::runtime_error("unknown workload '" + config.workload + "'");
  }

  RunSummary summary;
  summary.workload = config.workload;
  summary.mode = config.mode;

  fi::TrialSupervisor supervisor(factory, config.supervisor_config());
  supervisor.prepare_golden();

  if (config.mode == RunMode::kInject) {
    fi::Campaign campaign(supervisor, config.campaign_config());
    const fi::CampaignResult result = campaign.run();
    summary.outcomes = result.overall;
    summary.resumed_trials = result.resumed_trials;
    summary.interrupted = result.interrupted;
    summary.aborted = result.aborted;

    if (!config.report_file.empty()) {
      std::ofstream report_stream(config.report_file);
      if (!report_stream) {
        throw std::runtime_error("cannot open report file '" +
                                 config.report_file + "'");
      }
      report::ReportInputs inputs;
      inputs.campaign = &result;
      inputs.algebraic =
          config.workload == "DGEMM" || config.workload == "LUD";
      report_stream << report::render_report(inputs);
    }

    if (!config.log_file.empty()) {
      std::ofstream log_stream(config.log_file);
      if (!log_stream) {
        throw std::runtime_error("cannot open log file '" +
                                 config.log_file + "'");
      }
      fi::TrialLogWriter writer(log_stream);
      writer.append_all(result);
      summary.logged_trials = writer.written();
    }

    util::Table table("Injection campaign - " + config.workload);
    table.set_header({"metric", "value"});
    table.add_row({"trials", std::to_string(result.overall.total())});
    table.add_row({"masked",
                   util::fmt_percent(result.overall.masked_rate())});
    table.add_row({"sdc", util::fmt_percent(result.overall.sdc_rate())});
    table.add_row({"due", util::fmt_percent(result.overall.due_rate())});
    table.add_row({"retries (not injected)",
                   std::to_string(result.not_injected)});
    if (result.resumed_trials > 0) {
      table.add_row({"resumed from journal",
                     std::to_string(result.resumed_trials)});
    }
    if (result.interrupted) table.add_row({"status", "interrupted"});
    if (result.aborted) table.add_row({"status", "aborted (circuit breaker)"});
    table.print_text(out);
  } else {
    const phi::ResourceMap map =
        phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
    const radiation::DeviceSensitivity sensitivity =
        radiation::DeviceSensitivity::knc_3120a(map);
    radiation::BeamCampaign campaign(supervisor, sensitivity,
                                     config.beam_config());
    const radiation::BeamResult result = campaign.run();
    summary.sdc_fit = result.sdc_fit.fit;
    summary.due_fit = result.due_fit.fit;

    util::Table table("Beam campaign - " + config.workload);
    table.set_header({"metric", "value"});
    table.add_row({"runs", std::to_string(result.runs)});
    table.add_row({"fluence [n/cm^2]", util::fmt(result.fluence, 0)});
    table.add_row({"SDC FIT",
                   util::fmt_interval(result.sdc_fit.fit,
                                      result.sdc_fit.fit_lo,
                                      result.sdc_fit.fit_hi, 1)});
    table.add_row({"DUE FIT",
                   util::fmt_interval(result.due_fit.fit,
                                      result.due_fit.fit_lo,
                                      result.due_fit.fit_hi, 1)});
    table.print_text(out);
  }
  return summary;
}

}  // namespace phifi::cli

#include "cli/runner.hpp"

#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "analysis/pvf.hpp"
#include "core/campaign_journal.hpp"
#include "core/trial_log.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/lease.hpp"
#include "fabric/options.hpp"
#include "fabric/worker.hpp"
#include "report/report.hpp"
#include "radiation/sensitivity.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/trace.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace phifi::cli {

namespace {

/// Exports the golden run's device counters as gauges so the metrics
/// snapshot carries the arithmetic-intensity context (Sec. 3.2/4.2) next
/// to the campaign counters it explains.
void export_golden_counters(telemetry::MetricsRegistry& metrics,
                            const phi::CounterSnapshot& counters,
                            double golden_seconds) {
  metrics.gauge("phi.golden.flops").set(static_cast<double>(counters.flops));
  metrics.gauge("phi.golden.bytes_read")
      .set(static_cast<double>(counters.bytes_read));
  metrics.gauge("phi.golden.bytes_written")
      .set(static_cast<double>(counters.bytes_written));
  metrics.gauge("phi.golden.bytes_total")
      .set(static_cast<double>(counters.bytes_total()));
  metrics.gauge("phi.golden.arithmetic_intensity")
      .set(counters.arithmetic_intensity());
  metrics.gauge("phi.golden.kernel_launches")
      .set(static_cast<double>(counters.kernel_launches));
  metrics.gauge("phi.golden.seconds").set(golden_seconds);
}

/// Renders the final metrics snapshot, shared by the plain and fabric
/// paths.
void write_metrics_file(const RunnerConfig& config,
                        telemetry::MetricsRegistry& metrics) {
  if (config.metrics_file.empty()) return;
  std::ofstream metrics_stream(config.metrics_file);
  if (!metrics_stream) {
    throw std::runtime_error("cannot open metrics file '" +
                             config.metrics_file + "'");
  }
  if (config.metrics_format == MetricsFormat::kOpenMetrics) {
    metrics_stream << metrics.render_openmetrics();
  } else {
    metrics_stream << metrics.snapshot().dump() << "\n";
  }
}

/// Fabric dispatch: this process is one role of a sharded campaign — a
/// coordinator leasing ranges, or a worker executing them into its shard
/// journal. Tallies are assembled later by phifi_merge, not here.
RunSummary run_fabric(const RunnerConfig& config,
                      fi::TrialSupervisor& supervisor,
                      telemetry::MetricsRegistry& metrics, bool telemetry_on,
                      telemetry::TraceWriter* trace,
                      telemetry::TrialProfiler* profiler, std::ostream& out) {
  RunSummary summary;
  summary.workload = config.workload;
  summary.mode = config.mode;
  summary.fabric = true;

  // The scrape endpoint and the history ledger both need live registry /
  // estimator state even when no --metrics-out file was asked for.
  const bool fabric_telemetry = telemetry_on ||
                                !config.fabric_serve_metrics.empty() ||
                                !config.history_file.empty();

  fi::CampaignConfig campaign_config = config.campaign_config();
  if (fabric_telemetry) campaign_config.metrics = &metrics;
  // Worker-side only in practice: the coordinator runs no trials, so its
  // commit path never fires. The worker's run_range feeds this profiler and
  // ships its snapshot on the STATS heartbeat.
  campaign_config.profiler = profiler;
  const std::uint64_t fingerprint = fi::campaign_fingerprint(
      campaign_config, supervisor.workload_name(),
      supervisor.time_windows());

  fabric::FabricOptions options;
  options.address = config.fabric_listen.empty() ? config.fabric_connect
                                                 : config.fabric_listen;
  options.ledger_path = config.fabric_ledger;
  options.shard_path = config.fabric_shard;
  options.lease_size = config.fabric_lease_size;
  options.heartbeat_seconds = config.fabric_heartbeat_seconds;
  options.lease_timeout_seconds = config.fabric_lease_timeout_seconds;
  options.reconnect_initial_ms = config.fabric_reconnect_ms;
  options.stats_interval_seconds = config.fabric_stats_seconds;
  options.serve_metrics = config.fabric_serve_metrics;

  util::Table table("Fabric - " + config.workload);
  table.set_header({"metric", "value"});
  if (!config.fabric_listen.empty()) {
    // Resolve the campaign run id before the trace header is written so
    // every trace record (header included) carries it. A resumed ledger
    // keeps its original id — the continued campaign is the same run.
    if (options.run_id == 0 && !options.ledger_path.empty()) {
      try {
        options.run_id = fabric::read_ledger(options.ledger_path).run_id;
      } catch (const std::runtime_error&) {
        // Missing or unreadable ledger: the coordinator proper will
        // open/report it; for id purposes this is a fresh campaign.
      }
    }
    if (options.run_id == 0) options.run_id = telemetry::generate_run_id();
    if (trace != nullptr) {
      trace->set_run_id(telemetry::run_id_to_hex(options.run_id));
      telemetry::TraceCampaign header;
      header.workload = config.workload;
      header.trials = config.trials;
      header.seed = config.seed;
      header.policy = std::string(to_string(config.policy));
      for (fi::FaultModel model : config.models) {
        header.models.emplace_back(to_string(model));
      }
      header.time_windows = supervisor.time_windows();
      header.jobs = config.jobs;
      trace->campaign(header);
    }

    // The coordinator's estimator is fed the exact fleet stream (per-
    // attempt LeaseDone details in attempt order), so its intervals are
    // bit-identical to a --jobs 1 run of the same campaign.
    std::unique_ptr<telemetry::CampaignEstimator> estimator;
    if (fabric_telemetry) {
      estimator = std::make_unique<telemetry::CampaignEstimator>();
    }
    std::unique_ptr<telemetry::ProgressEmitter> progress;
    if (config.progress_seconds > 0.0) {
      progress = std::make_unique<telemetry::ProgressEmitter>(
          metrics, out, config.progress_seconds);
      progress->set_estimator(estimator.get(), config.stop_ci_width);
    }
    const auto fabric_start = std::chrono::steady_clock::now();
    const fabric::CoordinatorResult result = fabric::run_coordinator(
        campaign_config, fingerprint, options,
        fabric_telemetry ? &metrics : nullptr, trace, estimator.get(),
        progress.get(), out);
    const double elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      fabric_start)
            .count();
    if (progress != nullptr) summary.progress_emits = progress->emitted();
    summary.interrupted = result.interrupted;
    summary.stopped_early = result.stopped_early;
    summary.fabric_workers = result.workers_seen;
    summary.fabric_leases = result.leases_granted;
    summary.fabric_reclaimed = result.leases_reclaimed;
    if (estimator != nullptr && !config.metrics_file.empty()) {
      estimator->publish(metrics);
    }

    if (!config.history_file.empty()) {
      telemetry::HistoryRecord record;
      record.workload = supervisor.workload_name();
      record.fingerprint = fingerprint;
      record.git_revision = telemetry::git_describe();
      record.run_id = telemetry::run_id_to_hex(result.run_id);
      record.seed = config.seed;
      record.jobs = config.jobs;
      record.trials_target = config.trials;
      record.completed = result.fleet_completed;
      record.masked = result.fleet_masked;
      record.sdc = result.fleet_sdc;
      record.due = result.fleet_due;
      record.not_injected = result.fleet_not_injected;
      record.stopped_early =
          result.stopped_early || result.fleet_stopped_early;
      record.interrupted = result.interrupted;
      record.elapsed_seconds = elapsed_seconds;
      record.trials_per_sec =
          elapsed_seconds > 0.0
              ? static_cast<double>(result.fleet_completed) / elapsed_seconds
              : 0.0;
      if (estimator != nullptr) {
        const util::Interval sdc_ci = estimator->sdc_interval();
        const util::Interval due_ci = estimator->due_interval();
        record.sdc_rate = sdc_ci.point;
        record.sdc_ci_lo = sdc_ci.lo;
        record.sdc_ci_hi = sdc_ci.hi;
        record.due_rate = due_ci.point;
        record.due_ci_lo = due_ci.lo;
        record.due_ci_hi = due_ci.hi;
        for (const telemetry::CellEstimate& cell : estimator->cells()) {
          telemetry::HistoryCell entry;
          entry.model = cell.key.model;
          entry.window = cell.key.window;
          entry.category = cell.key.category;
          entry.masked = cell.counts.masked;
          entry.sdc = cell.counts.sdc;
          entry.due = cell.counts.due;
          entry.sdc_rate = cell.sdc.point;
          entry.sdc_ci_lo = cell.sdc.lo;
          entry.sdc_ci_hi = cell.sdc.hi;
          record.cells.push_back(std::move(entry));
        }
      }
      telemetry::append_history(config.history_file, record);
    }

    table.add_row({"role", "coordinator"});
    table.add_row({"status", result.complete
                                 ? (result.stopped_early
                                        ? "stopped early (CI target)"
                                        : "complete")
                                 : (result.interrupted ? "interrupted"
                                                       : "incomplete")});
    table.add_row({"run id", telemetry::run_id_to_hex(result.run_id)});
    table.add_row({"injected (done prefix)",
                   std::to_string(result.completed)});
    if (result.fleet_boundary) {
      table.add_row({"fleet tally (exact)",
                     std::to_string(result.fleet_completed) + " = " +
                         std::to_string(result.fleet_masked) + " masked / " +
                         std::to_string(result.fleet_sdc) + " sdc / " +
                         std::to_string(result.fleet_due) + " due"});
    }
    table.add_row({"workers seen", std::to_string(result.workers_seen)});
    table.add_row({"leases granted", std::to_string(result.leases_granted)});
    table.add_row({"leases reclaimed",
                   std::to_string(result.leases_reclaimed)});
  } else {
    const fabric::WorkerResult result = fabric::run_worker(
        supervisor, campaign_config, fingerprint, options,
        fabric_telemetry ? &metrics : nullptr, trace, out);
    if (result.rejected) {
      throw std::runtime_error("fabric: coordinator rejected this worker: " +
                               result.reject_reason);
    }
    summary.interrupted = result.interrupted;
    summary.aborted = result.aborted;
    summary.fabric_leases = result.leases_done;
    table.add_row({"role", "worker " + std::to_string(result.worker_id)});
    if (result.run_id != 0) {
      table.add_row({"run id", telemetry::run_id_to_hex(result.run_id)});
    }
    table.add_row({"status", result.complete
                                 ? "campaign complete"
                                 : (result.interrupted ? "interrupted"
                                                       : "stopped")});
    table.add_row({"leases done", std::to_string(result.leases_done)});
    table.add_row({"attempts executed", std::to_string(result.executed)});
    table.add_row({"shard", options.shard_path});
  }
  table.print_text(out);

  if (trace != nullptr) summary.trace_records = trace->records_written();
  write_metrics_file(config, metrics);
  return summary;
}

}  // namespace

RunSummary run_from_config(const RunnerConfig& config, std::ostream& out) {
  const fi::WorkloadFactory factory = work::find_workload(config.workload);
  if (factory == nullptr) {
    throw std::runtime_error("unknown workload '" + config.workload + "'");
  }

  RunSummary summary;
  summary.workload = config.workload;
  summary.mode = config.mode;

  // Telemetry is opt-in: with none of trace_file / metrics_file /
  // progress_seconds set, no registry pointer reaches the supervisor or
  // campaign and the hot paths keep their nullptr fast-path (the sec5
  // bench holds this to ±2% of the untraced trial time).
  telemetry::MetricsRegistry metrics;
  const bool telemetry_on = !config.trace_file.empty() ||
                            !config.metrics_file.empty() ||
                            config.progress_seconds > 0.0;
  std::unique_ptr<telemetry::TraceWriter> trace;
  if (!config.trace_file.empty()) {
    // A resumed campaign appends: the existing records stay the durable
    // history of the trials the journal replays.
    trace = std::make_unique<telemetry::TraceWriter>(
        config.trace_file, /*truncate=*/!config.resume);
  }
  std::unique_ptr<telemetry::TrialProfiler> profiler;
  if (!config.profile_file.empty()) {
    // Same append-on-resume rule as the trace: replayed trials were
    // profiled by the run that executed them.
    profiler = std::make_unique<telemetry::TrialProfiler>(
        config.profile_file, /*truncate=*/!config.resume);
    profiler->set_workload(config.workload);
  }

  fi::SupervisorConfig supervisor_config = config.supervisor_config();
  if (telemetry_on) supervisor_config.metrics = &metrics;
  fi::TrialSupervisor supervisor(factory, supervisor_config);

  // Satellite of the trial fast path: a restarted fabric worker whose shard
  // journal already records this exact campaign's golden digest adopts it
  // and skips the golden re-run — on wide fleets the per-worker golden run
  // is pure duplicated work.
  bool adopted_golden = false;
  if (config.trial_fast_path && !config.fabric_connect.empty() &&
      !config.fabric_shard.empty()) {
    try {
      const fi::JournalContents shard = fi::read_journal(config.fabric_shard);
      const auto probe = factory();
      const std::uint64_t fingerprint = fi::campaign_fingerprint(
          config.campaign_config(), probe->name(), probe->time_windows());
      if (shard.header.fingerprint == fingerprint &&
          shard.header.golden_digest != 0 &&
          shard.header.golden_output_bytes != 0) {
        supervisor.adopt_golden(shard.header.golden_digest,
                                shard.header.golden_output_bytes,
                                shard.header.golden_seconds);
        adopted_golden = true;
      }
    } catch (const std::runtime_error&) {
      // No shard yet (fresh worker) or an unreadable one: the normal golden
      // run below covers both, and open_shard() reports torn/mismatched
      // journals with full context.
    }
  }
  if (!adopted_golden) supervisor.prepare_golden();
  if (telemetry_on && !adopted_golden) {
    // An adopting supervisor never ran the golden in-process, so there are
    // no device counters to export.
    export_golden_counters(metrics, supervisor.golden_counters(),
                           supervisor.golden_seconds());
  }

  if (config.mode == RunMode::kInject &&
      (!config.fabric_listen.empty() || !config.fabric_connect.empty())) {
    RunSummary fabric_summary = run_fabric(config, supervisor, metrics,
                                           telemetry_on, trace.get(),
                                           profiler.get(), out);
    if (profiler != nullptr) {
      profiler->sync();
      fabric_summary.profile_records = profiler->records_written();
    }
    return fabric_summary;
  }

  if (config.mode == RunMode::kInject) {
    fi::CampaignConfig campaign_config = config.campaign_config();
    if (telemetry_on) campaign_config.metrics = &metrics;
    campaign_config.trace = trace.get();
    campaign_config.profiler = profiler.get();

    // The streaming estimator feeds the progress line, the exported
    // est.* gauges, and the history ledger's per-cell intervals; the
    // --stop-ci-width rule itself lives in the campaign (tally-based) and
    // works with or without it.
    std::unique_ptr<telemetry::CampaignEstimator> estimator;
    if (telemetry_on || !config.history_file.empty() ||
        config.stop_ci_width > 0.0) {
      estimator = std::make_unique<telemetry::CampaignEstimator>();
      campaign_config.estimator = estimator.get();
    }

    std::unique_ptr<telemetry::ProgressEmitter> progress;
    fi::TrialObserver observer;
    if (config.progress_seconds > 0.0) {
      progress = std::make_unique<telemetry::ProgressEmitter>(
          metrics, out, config.progress_seconds);
      progress->set_estimator(estimator.get(), config.stop_ci_width);
      observer = [&progress](const fi::TrialResult&,
                             std::span<const std::byte>) {
        progress->tick();
      };
    }

    fi::Campaign campaign(supervisor, campaign_config);
    const auto campaign_start = std::chrono::steady_clock::now();
    const fi::CampaignResult result = campaign.run(observer);
    const double elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      campaign_start)
            .count();
    if (progress != nullptr) {
      progress->emit_now();  // the final, complete status line
      summary.progress_emits = progress->emitted();
    }
    if (trace != nullptr) summary.trace_records = trace->records_written();
    if (profiler != nullptr) {
      summary.profile_records = profiler->records_written();
    }
    summary.outcomes = result.overall;
    summary.resumed_trials = result.resumed_trials;
    summary.interrupted = result.interrupted;
    summary.aborted = result.aborted;
    summary.stopped_early = result.stopped_early;

    if (!config.metrics_file.empty()) {
      if (estimator != nullptr) estimator->publish(metrics);
      write_metrics_file(config, metrics);
    }

    if (!config.history_file.empty()) {
      telemetry::HistoryRecord record;
      record.workload = result.workload;
      // A resumed campaign (including a replay of merged fabric shards)
      // inherits the journal's run id, so its history record correlates
      // with the coordinator's trace and ledger.
      if (config.resume && !campaign_config.journal_path.empty()) {
        try {
          const std::uint64_t journal_run =
              fi::read_journal(campaign_config.journal_path).header.run_id;
          if (journal_run != 0) {
            record.run_id = telemetry::run_id_to_hex(journal_run);
          }
        } catch (const std::runtime_error&) {
          // Header unreadable: the record simply stays uncorrelated.
        }
      }
      record.fingerprint = fi::campaign_fingerprint(
          campaign_config, result.workload, result.time_windows);
      record.git_revision = telemetry::git_describe();
      record.seed = config.seed;
      record.jobs = config.jobs;
      record.trials_target = config.trials;
      record.completed = result.overall.total();
      record.masked = result.overall.masked;
      record.sdc = result.overall.sdc;
      record.due = result.overall.due;
      record.not_injected = result.not_injected;
      record.stopped_early = result.stopped_early;
      record.interrupted = result.interrupted;
      record.aborted = result.aborted;
      record.elapsed_seconds = elapsed_seconds;
      record.trials_per_sec =
          elapsed_seconds > 0.0
              ? static_cast<double>(result.overall.total()) / elapsed_seconds
              : 0.0;
      const util::Interval sdc_ci = estimator->sdc_interval();
      const util::Interval due_ci = estimator->due_interval();
      record.sdc_rate = sdc_ci.point;
      record.sdc_ci_lo = sdc_ci.lo;
      record.sdc_ci_hi = sdc_ci.hi;
      record.due_rate = due_ci.point;
      record.due_ci_lo = due_ci.lo;
      record.due_ci_hi = due_ci.hi;
      for (const telemetry::CellEstimate& cell : estimator->cells()) {
        telemetry::HistoryCell entry;
        entry.model = cell.key.model;
        entry.window = cell.key.window;
        entry.category = cell.key.category;
        entry.masked = cell.counts.masked;
        entry.sdc = cell.counts.sdc;
        entry.due = cell.counts.due;
        entry.sdc_rate = cell.sdc.point;
        entry.sdc_ci_lo = cell.sdc.lo;
        entry.sdc_ci_hi = cell.sdc.hi;
        record.cells.push_back(std::move(entry));
      }
      telemetry::append_history(config.history_file, record);
    }

    if (!config.report_file.empty()) {
      std::ofstream report_stream(config.report_file);
      if (!report_stream) {
        throw std::runtime_error("cannot open report file '" +
                                 config.report_file + "'");
      }
      report::ReportInputs inputs;
      inputs.campaign = &result;
      inputs.counters = &supervisor.golden_counters();
      inputs.golden_seconds = supervisor.golden_seconds();
      inputs.algebraic =
          config.workload == "DGEMM" || config.workload == "LUD";
      report_stream << report::render_report(inputs);
    }

    if (!config.log_file.empty()) {
      std::ofstream log_stream(config.log_file);
      if (!log_stream) {
        throw std::runtime_error("cannot open log file '" +
                                 config.log_file + "'");
      }
      fi::TrialLogWriter writer(log_stream);
      writer.append_all(result);
      summary.logged_trials = writer.written();
    }

    util::Table table("Injection campaign - " + config.workload);
    table.set_header({"metric", "value"});
    table.add_row({"trials", std::to_string(result.overall.total())});
    if (config.jobs > 1) {
      table.add_row({"jobs", std::to_string(config.jobs)});
    }
    table.add_row({"masked",
                   util::fmt_percent(result.overall.masked_rate())});
    table.add_row({"sdc", util::fmt_percent(result.overall.sdc_rate())});
    table.add_row({"due", util::fmt_percent(result.overall.due_rate())});
    table.add_row({"retries (not injected)",
                   std::to_string(result.not_injected)});
    if (result.resumed_trials > 0) {
      table.add_row({"resumed from journal",
                     std::to_string(result.resumed_trials)});
    }
    if (estimator != nullptr && estimator->total() > 0) {
      const util::Interval sdc_ci = estimator->sdc_interval();
      table.add_row({"sdc 95% CI (Wilson)",
                     util::fmt_interval(100.0 * sdc_ci.point,
                                        100.0 * sdc_ci.lo,
                                        100.0 * sdc_ci.hi, 2) + " %"});
    }
    if (result.stopped_early) {
      table.add_row({"status", "stopped early (precision target reached)"});
    }
    if (result.interrupted) table.add_row({"status", "interrupted"});
    if (result.aborted) table.add_row({"status", "aborted (circuit breaker)"});
    table.print_text(out);
  } else {
    const phi::ResourceMap map =
        phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
    const radiation::DeviceSensitivity sensitivity =
        radiation::DeviceSensitivity::knc_3120a(map);
    radiation::BeamCampaign campaign(supervisor, sensitivity,
                                     config.beam_config());
    const radiation::BeamResult result = campaign.run();
    summary.sdc_fit = result.sdc_fit.fit;
    summary.due_fit = result.due_fit.fit;

    util::Table table("Beam campaign - " + config.workload);
    table.set_header({"metric", "value"});
    table.add_row({"runs", std::to_string(result.runs)});
    table.add_row({"fluence [n/cm^2]", util::fmt(result.fluence, 0)});
    table.add_row({"SDC FIT",
                   util::fmt_interval(result.sdc_fit.fit,
                                      result.sdc_fit.fit_lo,
                                      result.sdc_fit.fit_hi, 1)});
    table.add_row({"DUE FIT",
                   util::fmt_interval(result.due_fit.fit,
                                      result.due_fit.fit_lo,
                                      result.due_fit.fit_hi, 1)});
    table.print_text(out);
  }
  return summary;
}

}  // namespace phifi::cli

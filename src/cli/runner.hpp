// Campaign runner behind the phifi_run tool: executes the campaign a
// config file describes and prints/logs the results. Lives in the library
// so the tests can drive it without spawning processes.
#pragma once

#include <iosfwd>

#include "cli/config.hpp"

namespace phifi::cli {

struct RunSummary {
  std::string workload;
  RunMode mode = RunMode::kInject;
  fi::OutcomeTally outcomes;      ///< inject mode
  double sdc_fit = 0.0;           ///< beam mode
  double due_fit = 0.0;           ///< beam mode
  std::uint64_t logged_trials = 0;
  std::uint64_t resumed_trials = 0;  ///< replayed from the journal
  bool interrupted = false;  ///< stopped by SIGINT/SIGTERM; journal flushed
  bool aborted = false;      ///< circuit breaker tripped
  bool stopped_early = false;  ///< --stop-ci-width precision target reached

  // Telemetry (see docs/TELEMETRY.md).
  std::uint64_t trace_records = 0;   ///< NDJSON records written
  std::uint64_t progress_emits = 0;  ///< live progress lines rendered
  std::uint64_t profile_records = 0;  ///< NDJSON `profile` records written

  // Fabric roles (docs/FABRIC.md). `fabric` marks a coordinator/worker
  // run; outcome tallies then live in the shard journals, not here.
  bool fabric = false;
  std::uint64_t fabric_workers = 0;   ///< coordinator: distinct workers seen
  std::uint64_t fabric_leases = 0;    ///< granted (coord) / done (worker)
  std::uint64_t fabric_reclaimed = 0; ///< coordinator: leases reclaimed
};

/// Runs the configured campaign. Reports to `out`; per-trial logs go to
/// config.log_file if set. Returns the summary (also printed).
/// Throws std::runtime_error for unknown workloads.
RunSummary run_from_config(const RunnerConfig& config, std::ostream& out);

}  // namespace phifi::cli

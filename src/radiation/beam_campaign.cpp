#include "radiation/beam_campaign.hpp"

#include "util/log.hpp"

namespace phifi::radiation {

BeamResult BeamCampaign::run() {
  BeamResult result;
  result.workload = supervisor_->workload_name();
  analysis::SdcAnalyzer analyzer(*supervisor_);

  util::Rng rng(config_.seed);
  const double fluence_per_run = config_.flux * config_.run_seconds;
  const double strikes_mean =
      sensitivity_->expected_strikes(fluence_per_run);

  while (result.runs < config_.max_runs &&
         result.executions < config_.max_executions &&
         (result.sdc < config_.min_sdc ||
          result.due_total() < config_.min_due)) {
    ++result.runs;
    result.fluence += fluence_per_run;

    const std::uint64_t strikes = rng.poisson(strikes_mean);
    result.strikes += strikes;
    if (strikes == 0) continue;  // clean execution: fluence only

    // Walk the strikes of this execution; the first one that escapes the
    // hardware decides the run's fate (the beam is tuned so two visible
    // faults in one execution are negligible; we keep that property).
    bool machine_check = false;
    StrikeOutcome fault;
    bool have_fault = false;
    for (std::uint64_t s = 0; s < strikes; ++s) {
      const StrikeOutcome outcome = sensitivity_->sample_strike(rng);
      switch (outcome.kind) {
        case StrikeOutcome::Kind::kAbsorbed:
          ++result.absorbed;
          break;
        case StrikeOutcome::Kind::kMachineCheck:
          machine_check = true;
          break;
        case StrikeOutcome::Kind::kProgramFault:
          if (!have_fault) {
            fault = outcome;
            have_fault = true;
          }
          break;
      }
      if (machine_check) break;
    }

    if (machine_check) {
      // MCA kills the offload before the program can finish: DUE without
      // needing to execute anything.
      ++result.due_machine_check;
      continue;
    }
    if (!have_fault) continue;

    ++result.executions;
    fi::TrialConfig trial;
    trial.trial_seed = rng.next();
    trial.model = fault.model;
    trial.policy = fault.target;
    trial.burst_elements = fault.burst_elements;
    const fi::TrialResult outcome = supervisor_->run_trial(trial);
    switch (outcome.outcome) {
      case fi::Outcome::kSdc:
        ++result.sdc;
        analyzer.inspect(supervisor_->last_output());
        break;
      case fi::Outcome::kDue:
        ++result.due_program;
        break;
      case fi::Outcome::kMasked:
      case fi::Outcome::kNotInjected:
        ++result.masked_faults;
        break;
    }
  }

  result.sdc_fit = analysis::fit_from_counts(result.sdc, result.fluence);
  result.due_fit =
      analysis::fit_from_counts(result.due_total(), result.fluence);
  result.patterns = analyzer.patterns();
  result.tolerance = analyzer.tolerance();
  result.single_element_fraction = analyzer.single_element_fraction();

  util::log_info() << result.workload << ": beam campaign " << result.runs
                   << " runs, " << result.executions << " executed, "
                   << result.sdc << " SDC, " << result.due_total() << " DUE";
  return result;
}

}  // namespace phifi::radiation

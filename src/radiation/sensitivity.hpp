// Device sensitivity model: from neutron strike to program-level fault.
//
// The beam experiment (Sec. 4) observes only program outcomes; everything
// between the neutron and the corrupted variable is hardware the paper
// (and we) cannot introspect. This model makes that pipeline explicit and
// tunable:
//
//   strike target  ~ resource bit inventory x per-bit cross section
//   SECDED arrays  -> single-cell upsets corrected (absorbed);
//                     multi-cell upsets detected-uncorrectable -> MCA DUE
//   parity arrays  -> detected on read -> MCA DUE (with a residency factor)
//   unprotected    -> electrically/architecturally derated; survivors
//                     manifest as a program-level fault with a per-resource
//                     fault-model mixture (Sec. 5.2's rationale: high-level
//                     manifestations of low-level faults are not just
//                     single flips) and a target bias (data-path resources
//                     corrupt program data; dispatch/pipeline state corrupts
//                     a hardware thread's control variables).
//
// The per-bit cross sections are calibration constants in the literature's
// 22nm range; they set the absolute FIT scale, while the *differences
// between benchmarks* come entirely from executing the corrupted programs.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/fault_model.hpp"
#include "core/flip_engine.hpp"
#include "phi/resource_map.hpp"
#include "util/rng.hpp"

namespace phifi::radiation {

/// What a single neutron strike turned into.
struct StrikeOutcome {
  enum class Kind {
    kAbsorbed,       ///< corrected by ECC or electrically masked
    kMachineCheck,   ///< detected uncorrectable -> immediate DUE
    kProgramFault,   ///< manifests as a corruption of program state
  };
  Kind kind = Kind::kAbsorbed;
  phi::ResourceClass resource = phi::ResourceClass::kL2Cache;
  fi::FaultModel model = fi::FaultModel::kSingle;
  fi::SelectionPolicy target = fi::SelectionPolicy::kGlobalBytesWeighted;
  /// Program elements the upset's physical footprint spans (one upset in a
  /// 512-bit vector register or a cache line covers several).
  unsigned burst_elements = 1;
};

/// Per-resource-class tuning.
struct ResourceModel {
  phi::ResourceClass cls;
  double bit_cross_section = 0.0;  ///< cm^2 per bit
  /// P(multi-cell upset defeating SECDED / parity hit on live data) ->
  /// immediate machine-check DUE.
  double machine_check_probability = 0.0;
  /// P(a non-absorbed strike perturbs architecturally live state).
  double derating = 0.0;
  /// Fault-model mixture of the program-level manifestation
  /// (Single, Double, Random, Zero).
  std::array<double, 4> model_weights = {1.0, 0.0, 0.0, 0.0};
  /// Where the manifestation lands.
  fi::SelectionPolicy target = fi::SelectionPolicy::kGlobalBytesWeighted;
  /// P(the manifestation spans a vector-register/cache-line-wide footprint)
  /// and the width of that footprint in program elements.
  double burst_probability = 0.0;
  unsigned burst_elements = 8;
  /// Filled from the ResourceMap.
  double total_cross_section = 0.0;  ///< bits x bit_cross_section, cm^2
};

class DeviceSensitivity {
 public:
  /// Calibrated model for the Knights Corner 3120A inventory.
  static DeviceSensitivity knc_3120a(const phi::ResourceMap& map);

  /// Total strike cross section of the beam-exposed device, cm^2.
  [[nodiscard]] double strike_cross_section() const { return total_sigma_; }

  /// Expected strikes for a given fluence (n/cm^2).
  [[nodiscard]] double expected_strikes(double fluence) const {
    return fluence * total_sigma_;
  }

  /// Samples the fate of one strike.
  [[nodiscard]] StrikeOutcome sample_strike(util::Rng& rng) const;

  [[nodiscard]] std::span<const ResourceModel> resources() const {
    return resources_;
  }

 private:
  std::vector<ResourceModel> resources_;
  double total_sigma_ = 0.0;
};

}  // namespace phifi::radiation

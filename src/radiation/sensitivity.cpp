#include "radiation/sensitivity.hpp"

#include <cassert>

namespace phifi::radiation {

DeviceSensitivity DeviceSensitivity::knc_3120a(const phi::ResourceMap& map) {
  DeviceSensitivity sensitivity;
  // Calibration notes. Per-bit cross sections are in the published 22nm
  // SRAM/flip-flop range (1e-15..1e-14 cm^2/bit); deratings fold electrical,
  // latch-window and architectural masking into one factor. The absolute
  // values set the device FIT scale (paper: up to ~193 FIT with ECC on);
  // per-benchmark differences emerge from running the corrupted programs.
  for (const phi::Resource& resource : map.resources()) {
    if (!resource.beam_exposed) continue;
    ResourceModel model;
    model.cls = resource.cls;
    switch (resource.cls) {
      case phi::ResourceClass::kL2Cache:
        model.bit_cross_section = 1.0e-14;
        // SECDED corrects single-cell upsets; rare multi-cell upsets on a
        // live line trip MCA (detected uncorrectable -> DUE).
        model.machine_check_probability =
            resource.protection == phi::Protection::kSecded ? 5.0e-4 : 0.0;
        model.derating = 0.0;
        break;
      case phi::ResourceClass::kL1Cache:
        model.bit_cross_section = 1.0e-14;
        // Parity detects on read; residency/liveness keeps the rate low.
        model.machine_check_probability =
            resource.protection == phi::Protection::kParity ? 2.0e-3 : 0.0;
        model.derating = 0.0;
        break;
      case phi::ResourceClass::kRegisterFile:
      case phi::ResourceClass::kVectorRegisters:
        model.bit_cross_section = 8.0e-15;
        model.machine_check_probability =
            resource.protection == phi::Protection::kSecded ? 2.0e-4 : 0.0;
        model.derating =
            resource.protection == phi::Protection::kNone ? 0.3 : 0.0;
        // Data-path strikes are physical bit flips in register cells.
        model.model_weights = {0.8, 0.2, 0.0, 0.0};
        model.target = fi::SelectionPolicy::kGlobalBytesWeighted;
        model.burst_probability = 0.7;  // 512-bit vector registers
        break;
      case phi::ResourceClass::kPipelineQueues:
        // Unprotected flip-flops in load/store and pipeline queues: strikes
        // corrupt in-flight data words.
        model.bit_cross_section = 8.0e-15;
        model.derating = 0.25;
        model.model_weights = {0.60, 0.20, 0.15, 0.05};
        model.target = fi::SelectionPolicy::kBytesWeighted;
        model.burst_probability = 0.5;  // store-queue / line-wide entries
        break;
      case phi::ResourceClass::kDispatchLogic:
        // Decode/dispatch state: manifests as corrupted control variables
        // of one hardware thread, often as wild (Random) values.
        model.bit_cross_section = 1.2e-14;
        model.derating = 0.35;
        model.model_weights = {0.30, 0.20, 0.40, 0.10};
        model.target = fi::SelectionPolicy::kWorkerFrameOnly;
        break;
      case phi::ResourceClass::kInterconnect:
        // Ring-stop buffers: whole flits replaced or zeroed.
        model.bit_cross_section = 8.0e-15;
        model.derating = 0.25;
        model.model_weights = {0.25, 0.15, 0.45, 0.15};
        model.target = fi::SelectionPolicy::kGlobalBytesWeighted;
        model.burst_probability = 0.6;  // whole flits in flight
        break;
      case phi::ResourceClass::kDram:
        continue;  // not beam exposed (filtered above, defensive)
    }
    model.total_cross_section =
        static_cast<double>(resource.bits) * model.bit_cross_section;
    sensitivity.total_sigma_ += model.total_cross_section;
    sensitivity.resources_.push_back(model);
  }
  return sensitivity;
}

StrikeOutcome DeviceSensitivity::sample_strike(util::Rng& rng) const {
  assert(!resources_.empty());
  // Pick the struck resource proportionally to its total cross section.
  double target = rng.uniform() * total_sigma_;
  const ResourceModel* struck = &resources_.back();
  for (const ResourceModel& resource : resources_) {
    if (target < resource.total_cross_section) {
      struck = &resource;
      break;
    }
    target -= resource.total_cross_section;
  }

  StrikeOutcome outcome;
  outcome.resource = struck->cls;
  const double roll = rng.uniform();
  if (roll < struck->machine_check_probability) {
    outcome.kind = StrikeOutcome::Kind::kMachineCheck;
    return outcome;
  }
  if (roll < struck->machine_check_probability + struck->derating) {
    outcome.kind = StrikeOutcome::Kind::kProgramFault;
    outcome.target = struck->target;
    const std::size_t model_index = rng.weighted_index(
        std::span<const double>(struck->model_weights.data(), 4));
    outcome.model = static_cast<fi::FaultModel>(model_index);
    if (struck->burst_probability > 0.0 &&
        rng.bernoulli(struck->burst_probability)) {
      outcome.burst_elements = struck->burst_elements;
    }
    return outcome;
  }
  outcome.kind = StrikeOutcome::Kind::kAbsorbed;
  return outcome;
}

}  // namespace phifi::radiation

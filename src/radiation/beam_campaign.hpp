// Neutron-beam campaign simulator (Sec. 4).
//
// Reproduces the LANSCE experimental loop: a benchmark runs back-to-back
// under an accelerated neutron flux; the host diffs each execution's output
// against a golden copy and logs SDCs and DUEs; FIT rates come from the
// accumulated fluence scaled to the natural sea-level flux.
//
// Strikes arrive as a Poisson process over the device's strike cross
// section. Executions with no strike that reaches program state are counted
// analytically (they contribute fluence, not errors), so the simulator only
// pays for the executions that matter — the same importance-sampling
// argument the paper uses in reverse when it tunes the beam so that fewer
// than 1e-4 executions see an error.
#pragma once

#include <cstdint>

#include "analysis/fit.hpp"
#include "analysis/sdc_analyzer.hpp"
#include "core/supervisor.hpp"
#include "radiation/sensitivity.hpp"

namespace phifi::radiation {

struct BeamConfig {
  /// Accelerated flux at the device, n/(cm^2 s). LANSCE runs 1e5..2.5e6.
  double flux = 2.0e6;
  /// Modeled wall-clock time of one benchmark execution on the real device.
  double run_seconds = 1.0;
  std::uint64_t seed = 0xbea71e5ULL;
  /// Stop when both minima are met (the paper collected >100 SDC/DUE per
  /// benchmark) or when a budget runs out.
  std::uint64_t min_sdc = 100;
  std::uint64_t min_due = 60;
  std::uint64_t max_executions = 20000;
  std::uint64_t max_runs = 50'000'000;
};

struct BeamResult {
  std::string workload;
  std::uint64_t runs = 0;        ///< total executions under beam
  std::uint64_t executions = 0;  ///< runs actually executed (strike reached
                                 ///< program state)
  double fluence = 0.0;          ///< n/cm^2
  std::uint64_t strikes = 0;
  std::uint64_t absorbed = 0;

  std::uint64_t sdc = 0;
  std::uint64_t due_machine_check = 0;  ///< MCA-detected (no execution)
  std::uint64_t due_program = 0;        ///< crash/hang of the program
  std::uint64_t masked_faults = 0;      ///< program faults with no effect

  analysis::FitEstimate sdc_fit;
  analysis::FitEstimate due_fit;
  analysis::PatternTally patterns;        ///< spatial split of the SDCs
  analysis::ToleranceAnalysis tolerance;  ///< Fig. 3 inputs
  double single_element_fraction = 0.0;

  [[nodiscard]] std::uint64_t due_total() const {
    return due_machine_check + due_program;
  }

  /// SDC FIT attributed to one spatial pattern (Fig. 2's stacked bars).
  [[nodiscard]] double pattern_fit(analysis::ErrorPattern pattern) const {
    return sdc_fit.fit * patterns.fraction(pattern);
  }
};

class BeamCampaign {
 public:
  BeamCampaign(fi::TrialSupervisor& supervisor,
               const DeviceSensitivity& sensitivity, BeamConfig config)
      : supervisor_(&supervisor),
        sensitivity_(&sensitivity),
        config_(config) {}

  /// Runs the campaign. The supervisor must have a golden copy prepared.
  BeamResult run();

 private:
  fi::TrialSupervisor* supervisor_;
  const DeviceSensitivity* sensitivity_;
  BeamConfig config_;
};

}  // namespace phifi::radiation

// Lease table + crash-durable lease ledger for the campaign fabric.
//
// The coordinator carves the campaign's attempt-index space into
// contiguous ranges and leases them to workers. A lease carries a
// heartbeat deadline: a worker that stalls, crashes, or partitions misses
// its deadline and the lease is reclaimed and re-issued — safe because
// trial seeds are counter-indexed (re-executed attempts are bit-identical)
// and the shard merge dedups overlapping records.
//
// Every lease transition is appended to a ledger file (framed + CRC'd like
// the journal) before the wire message that announces it, so a coordinator
// killed at any instant can restart, replay the ledger, re-adopt workers
// that reconnect mid-lease, and re-lease orphaned ranges.
//
// Ledger layout (integers little-endian):
//   magic "PHIFILL1"
//   u32 header_size | header payload | u32 crc32(header payload)
//     header payload: u64 fingerprint, u64 trials
//                     [, u64 run_id — absent in pre-observability ledgers]
//   repeated records, each:
//   u32 payload_size | record payload | u32 crc32(record payload)
//     record payload: u8 kind, u64 lease, u64 begin, u64 end,
//                     u64 injected, u64 sdc
//                     [, u32 detail_len + detail bytes — DONE records
//                      carry the per-attempt outcome detail (fabric/
//                      stats.hpp) so a restarted coordinator can rebuild
//                      its exact fleet estimator; absent in old ledgers]
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace phifi::fabric {

struct Lease {
  std::uint64_t id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  ///< exclusive
  /// Owning worker id; 0 = orphaned (granted, but no live connection —
  /// the state every outstanding lease re-enters after a coordinator
  /// restart, until its worker reconnects and re-adopts it).
  std::uint64_t worker = 0;
  std::chrono::steady_clock::time_point deadline{};
};

/// Single-threaded lease bookkeeping for the coordinator's event loop.
class LeaseTable {
 public:
  using Clock = std::chrono::steady_clock;

  /// `budget` caps the attempt indices ever issued (the run() retry
  /// budget: trials * (1 + max_retry_factor)) so a pathological workload
  /// cannot make the fabric lease indices forever.
  LeaseTable(std::uint64_t trials, std::uint64_t budget,
             std::uint64_t lease_size);

  /// Grants the next range — a reclaimed range first (smallest begin),
  /// else a fresh one — as a new lease. nullopt when no work is available
  /// right now (which is not campaign completion: outstanding leases may
  /// yet be reclaimed).
  std::optional<Lease> grant(std::uint64_t worker, Clock::time_point deadline);

  /// Re-attaches an outstanding lease to a reconnecting worker (the
  /// coordinator-restart and network-partition recovery path). False if
  /// the lease is no longer outstanding (completed or reclaimed).
  bool adopt(std::uint64_t lease_id, std::uint64_t worker,
             Clock::time_point deadline);

  /// Refreshes a lease's heartbeat deadline. False for unknown (stale)
  /// lease ids — a revoked worker phoning in about a reclaimed lease.
  bool heartbeat(std::uint64_t lease_id, Clock::time_point deadline);

  /// Marks a lease's range done with its outcome counts. False for stale
  /// lease ids (the range was reclaimed and belongs to someone else now).
  bool complete(std::uint64_t lease_id, std::uint64_t injected,
                std::uint64_t sdc);

  /// Reclaims every lease whose deadline has passed; returns them.
  std::vector<Lease> expire(Clock::time_point now);

  /// Returns this worker's outstanding leases without reclaiming them —
  /// on a connection drop the deadline keeps running, so a quick
  /// reconnect re-adopts and a dead worker expires.
  [[nodiscard]] std::vector<Lease> leases_of(std::uint64_t worker) const;

  /// Injected completions in the contiguous done prefix from index 0 —
  /// the coordinator's campaign-completion criterion (a done range beyond
  /// a hole does not count until the hole fills).
  [[nodiscard]] std::uint64_t prefix_injected() const;
  /// SDC count in the same prefix (feeds the --stop-ci-width check).
  [[nodiscard]] std::uint64_t prefix_sdc() const;

  [[nodiscard]] std::uint64_t outstanding() const { return active_.size(); }
  /// True when nothing can ever be granted again: the fresh space is
  /// exhausted and no reclaimed range is pending.
  [[nodiscard]] bool exhausted() const;
  [[nodiscard]] std::uint64_t trials() const { return trials_; }

  // ---- ledger replay (coordinator restart) ----
  void restore_grant(std::uint64_t id, std::uint64_t begin,
                     std::uint64_t end, Clock::time_point deadline);
  void restore_done(std::uint64_t id, std::uint64_t injected,
                    std::uint64_t sdc);
  void restore_reclaim(std::uint64_t id);

 private:
  struct DoneRange {
    std::uint64_t end = 0;
    std::uint64_t injected = 0;
    std::uint64_t sdc = 0;
  };

  std::uint64_t trials_;
  std::uint64_t budget_;
  std::uint64_t lease_size_;
  std::uint64_t next_fresh_ = 0;  ///< first index never leased
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Lease> active_;  ///< by lease id
  /// Reclaimed ranges awaiting re-grant, keyed by begin.
  std::map<std::uint64_t, std::uint64_t> pending_;
  std::map<std::uint64_t, DoneRange> done_;  ///< by begin
};

// phicheck:exhaustive-switch — replay (read_ledger) must handle every record
// kind or crash recovery silently drops state.
enum class LedgerKind : std::uint8_t {
  kGrant = 1,
  kDone = 2,
  kReclaim = 3,
};

struct LedgerRecord {
  LedgerKind kind = LedgerKind::kGrant;
  std::uint64_t lease = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t injected = 0;
  std::uint64_t sdc = 0;
  /// Per-attempt outcome detail (encode_attempts) on DONE records; empty
  /// otherwise and in ledgers written before the observability plane.
  std::string detail;
};

struct LedgerContents {
  std::uint64_t fingerprint = 0;
  std::uint64_t trials = 0;
  /// Campaign run id; 0 when the ledger predates correlation ids.
  std::uint64_t run_id = 0;
  std::vector<LedgerRecord> records;
  /// File offset just past the last valid record; resume truncates here.
  std::uint64_t valid_bytes = 0;
  /// Bytes of torn/corrupt tail dropped during the load (0 = clean).
  std::uint64_t dropped_bytes = 0;
};

/// Loads a ledger. A torn tail is dropped and reported, mirroring the
/// journal. Throws std::runtime_error if the file cannot be opened or its
/// header is missing/corrupt.
LedgerContents read_ledger(const std::string& path);

class LeaseLedgerWriter {
 public:
  /// Starts a fresh ledger (truncating any existing file).
  LeaseLedgerWriter(const std::string& path, std::uint64_t fingerprint,
                    std::uint64_t trials, std::uint64_t run_id);
  /// Reopens an existing (already loaded) ledger for appending,
  /// truncating a torn tail at `valid_bytes` first.
  LeaseLedgerWriter(const std::string& path, std::uint64_t valid_bytes);
  ~LeaseLedgerWriter();

  LeaseLedgerWriter(const LeaseLedgerWriter&) = delete;
  LeaseLedgerWriter& operator=(const LeaseLedgerWriter&) = delete;

  /// Appends + fsyncs one record: lease transitions are rare (per lease,
  /// not per trial), so every one is durable before it is announced.
  void append(const LedgerRecord& record);

 private:
  int fd_ = -1;
};

}  // namespace phifi::fabric

#include "fabric/protocol.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/campaign_journal.hpp"  // journal_crc32: one CRC in the repo
#include "util/posix_io.hpp"

namespace phifi::fabric {

namespace {

/// Guards against a desynchronized stream asking us to buffer gigabytes:
/// most frames are ~100 bytes, but a LeaseDone carries the per-attempt
/// outcome detail for its whole range and a Stats frame carries the
/// worker's estimator cells, so the cap is generous.
constexpr std::uint32_t kMaxFrame = 1 << 20;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::uint8_t* data) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  return value;
}

void make_nonblocking_cloexec(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
}

}  // namespace

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kReject: return "reject";
    case MsgType::kLeaseRequest: return "lease-request";
    case MsgType::kLeaseGrant: return "lease-grant";
    case MsgType::kLeaseRevoke: return "lease-revoke";
    case MsgType::kLeaseDone: return "lease-done";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kGoodbye: return "goodbye";
    case MsgType::kStats: return "stats";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  std::vector<std::uint8_t> payload;
  payload.reserve(96 + message.text.size());
  payload.push_back(static_cast<std::uint8_t>(message.type));
  put_u64(payload, message.worker);
  put_u64(payload, message.fingerprint);
  put_u64(payload, message.lease);
  put_u64(payload, message.begin);
  put_u64(payload, message.end);
  put_u64(payload, message.progress);
  put_u64(payload, message.injected);
  put_u64(payload, message.masked);
  put_u64(payload, message.sdc);
  put_u64(payload, message.due);
  put_u64(payload, message.run);
  put_u32(payload, static_cast<std::uint32_t>(message.text.size()));
  payload.insert(payload.end(), message.text.begin(), message.text.end());

  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 8);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, fi::journal_crc32(payload.data(), payload.size()));
  return frame;
}

bool decode_message(std::vector<std::uint8_t>& buffer, Message* out) {
  if (buffer.size() < 4) return false;
  const std::uint32_t size = get_u32(buffer.data());
  if (size < 93 || size > kMaxFrame) {
    throw std::runtime_error("fabric: corrupt frame (size " +
                             std::to_string(size) + ")");
  }
  if (buffer.size() < 4 + static_cast<std::size_t>(size) + 4) return false;
  const std::uint8_t* payload = buffer.data() + 4;
  const std::uint32_t crc = get_u32(payload + size);
  if (crc != fi::journal_crc32(payload, size)) {
    throw std::runtime_error("fabric: corrupt frame (bad checksum)");
  }
  Message message;
  message.type = static_cast<MsgType>(payload[0]);
  message.worker = get_u64(payload + 1);
  message.fingerprint = get_u64(payload + 9);
  message.lease = get_u64(payload + 17);
  message.begin = get_u64(payload + 25);
  message.end = get_u64(payload + 33);
  message.progress = get_u64(payload + 41);
  message.injected = get_u64(payload + 49);
  message.masked = get_u64(payload + 57);
  message.sdc = get_u64(payload + 65);
  message.due = get_u64(payload + 73);
  message.run = get_u64(payload + 81);
  const std::uint32_t text_len = get_u32(payload + 89);
  if (93 + static_cast<std::size_t>(text_len) != size) {
    throw std::runtime_error("fabric: corrupt frame (bad text length)");
  }
  message.text.assign(reinterpret_cast<const char*>(payload + 93), text_len);
  buffer.erase(buffer.begin(),
               buffer.begin() + 4 + static_cast<std::size_t>(size) + 4);
  *out = std::move(message);
  return true;
}

Address parse_address(const std::string& spec) {
  Address address;
  if (spec.rfind("unix:", 0) == 0) {
    address.is_unix = true;
    address.path = spec.substr(5);
    if (address.path.empty()) {
      throw std::runtime_error("fabric: empty unix socket path in '" + spec +
                               "'");
    }
    if (address.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("fabric: unix socket path too long in '" +
                               spec + "'");
    }
    return address;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    address.is_unix = false;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      throw std::runtime_error("fabric: expected tcp:host:port, got '" +
                               spec + "'");
    }
    address.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long value = std::strtol(port.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value <= 0 || value > 65535) {
      throw std::runtime_error("fabric: bad port '" + port + "' in '" +
                               spec + "'");
    }
    address.port = static_cast<std::uint16_t>(value);
    return address;
  }
  throw std::runtime_error(
      "fabric: address must be unix:PATH or tcp:HOST:PORT, got '" + spec +
      "'");
}

int listen_on(const Address& address) {
  int fd = -1;
  if (address.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("fabric: socket: ") +
                               std::strerror(errno));
    }
    // A previous coordinator's stale socket file would make bind fail; a
    // restarted coordinator must be able to re-bind its address.
    ::unlink(address.path.c_str());
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(),
                 sizeof(sa.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error("fabric: bind '" + address.path +
                               "': " + std::strerror(saved));
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("fabric: socket: ") +
                               std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &sa.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("fabric: bad listen host '" + address.host +
                               "' (use a numeric address)");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error("fabric: bind " + address.host + ":" +
                               std::to_string(address.port) + ": " +
                               std::strerror(saved));
    }
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string("fabric: listen: ") +
                             std::strerror(saved));
  }
  make_nonblocking_cloexec(fd);
  return fd;
}

int connect_to(const Address& address, int timeout_ms) {
  int fd = -1;
  sockaddr_storage storage{};
  socklen_t len = 0;
  if (address.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    auto* sa = reinterpret_cast<sockaddr_un*>(&storage);
    sa->sun_family = AF_UNIX;
    std::strncpy(sa->sun_path, address.path.c_str(),
                 sizeof(sa->sun_path) - 1);
    len = sizeof(sockaddr_un);
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &sa->sin_addr) != 1) {
      // Fall back to a resolver for names like "localhost".
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* info = nullptr;
      // phicheck:blocking-ok(worker-side reconnect path, coordinator reaches it only by name-union on tick/ensure_link; numeric hosts short-circuit above, so the resolver runs once per worker start for names like localhost)
      if (::getaddrinfo(address.host.c_str(),
                        std::to_string(address.port).c_str(), &hints,
                        &info) != 0 ||
          info == nullptr) {
        if (fd >= 0) ::close(fd);
        return -1;
      }
      std::memcpy(&storage, info->ai_addr, info->ai_addrlen);
      ::freeaddrinfo(info);
    }
    len = sizeof(sockaddr_in);
  }
  if (fd < 0) return -1;
  make_nonblocking_cloexec(fd);
  // phicheck:allow(eintr) nonblocking connect: EINTR means the handshake continues asynchronously, exactly like EINPROGRESS — both resolve via poll + SO_ERROR below
  if (::connect(  // phicheck:blocking-ok(socket is O_NONBLOCK: connect returns EINPROGRESS immediately; completion is polled below with a bounded timeout)
          fd, reinterpret_cast<sockaddr*>(&storage), len) == 0) {
    return fd;
  }
  if (errno != EINPROGRESS && errno != EINTR) {
    ::close(fd);
    return -1;
  }
  // Nonblocking connect in flight: wait bounded, then check SO_ERROR.
  pollfd waiter{fd, POLLOUT, 0};
  const int ready = util::io::poll_retry(&waiter, 1, timeout_ms);
  if (ready <= 0) {
    ::close(fd);
    return -1;
  }
  int error = 0;
  socklen_t error_len = sizeof(error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) < 0 ||
      error != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_on(int listen_fd) {
  const int fd = util::io::accept_retry(listen_fd);
  if (fd < 0) return -1;
  make_nonblocking_cloexec(fd);
  return fd;
}

Connection::Connection(int fd) : fd_(fd) {}

Connection::~Connection() { close(); }

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Connection::send(const Message& message) {
  if (fd_ < 0) return false;
  const std::vector<std::uint8_t> frame = encode_message(message);
  const std::uint8_t* data = frame.data();
  std::size_t remaining = frame.size();
  while (remaining > 0) {
    const ssize_t n = util::io::send_some(fd_, data, remaining, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      remaining -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Frames are tiny; a full send buffer means the peer stopped
      // draining. Wait briefly rather than dropping the message.
      pollfd waiter{fd_, POLLOUT, 0};
      if (util::io::poll_retry(&waiter, 1, 1000) > 0) continue;
    }
    // A failed send usually means the peer hung up — but frames it sent
    // before closing (a coordinator's kShutdown racing our request) may
    // still be readable. Salvage them into inbound_ so next() can pop
    // them after the link is down; closing blind would lose them.
    pump();
    close();
    return false;
  }
  return true;
}

bool Connection::pump() {
  if (fd_ < 0) return false;
  while (true) {
    std::uint8_t chunk[4096];
    const ssize_t n = util::io::recv_some(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      inbound_.insert(inbound_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      close();
      return false;  // EOF
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    close();
    return false;
  }
}

bool Connection::next(Message* out) { return decode_message(inbound_, out); }

}  // namespace phifi::fabric

#include "fabric/worker.hpp"

#include <poll.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/campaign_journal.hpp"
#include "core/outcome.hpp"
#include "fabric/protocol.hpp"
#include "fabric/stats.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/history.hpp"  // run_id_to_hex
#include "util/log.hpp"
#include "util/posix_io.hpp"

namespace phifi::fabric {

namespace {

using Clock = std::chrono::steady_clock;

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Cumulative outcome counts for one lease (what heartbeats and the final
/// kLeaseDone report).
struct LeaseCounts {
  std::uint64_t injected = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;

  void add(fi::Outcome outcome) {
    switch (outcome) {
      case fi::Outcome::kMasked:
        ++injected;
        ++masked;
        break;
      case fi::Outcome::kSdc:
        ++injected;
        ++sdc;
        break;
      case fi::Outcome::kDue:
        ++injected;
        ++due;
        break;
      case fi::Outcome::kNotInjected:
        break;
    }
  }
};

struct CurrentLease {
  std::uint64_t id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// The whole worker: link state machine + lease executor. Single-threaded;
/// all socket I/O happens between trials (run_range's on_tick), never
/// inside one.
class WorkerLoop {
 public:
  WorkerLoop(fi::TrialSupervisor& supervisor,
             const fi::CampaignConfig& campaign, std::uint64_t fingerprint,
             const FabricOptions& options,
             telemetry::MetricsRegistry* metrics,
             telemetry::TraceWriter* trace, std::ostream& out)
      : supervisor_(&supervisor),
        config_(campaign),
        fingerprint_(fingerprint),
        options_(&options),
        metrics_(metrics),
        trace_(trace),
        out_(&out) {
    // The worker's own trial stream: run_range feeds the trace (with the
    // correlation context set on WELCOME) and the worker-local estimator
    // whose snapshot rides each STATS frame.
    config_.trace = trace_;
    config_.estimator = &estimator_;
  }

  WorkerResult run();

 private:
  void open_shard();
  void on_welcome(const Message& msg);
  bool ensure_link();
  void drain_link();
  void handle(const Message& msg);
  bool tick();  ///< run_range's on_tick: pump link, heartbeat; false = stop
  void maybe_send_stats();
  void execute_lease();
  void send_done();
  void note_commit(const fi::TrialResult& trial);
  bool stop_requested() const {
    return config_.stop_flag != nullptr &&
           config_.stop_flag->load(std::memory_order_relaxed);
  }

  fi::TrialSupervisor* supervisor_;
  fi::CampaignConfig config_;
  std::uint64_t fingerprint_;
  const FabricOptions* options_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::TraceWriter* trace_;
  std::ostream* out_;

  WorkerResult result_;
  std::unique_ptr<fi::CampaignJournalWriter> shard_;
  /// Attempt indices already durable in the shard, with their
  /// classification — the worker's resume state, the source of lease base
  /// counts, and the per-attempt detail attached to each LeaseDone.
  std::map<std::uint64_t, AttemptOutcome> done_;

  std::unique_ptr<Connection> link_;
  bool welcomed_ = false;
  bool requested_ = false;
  double backoff_ms_ = 0.0;
  Clock::time_point next_connect_{Clock::now()};

  std::optional<CurrentLease> lease_;
  LeaseCounts counts_;
  Clock::time_point last_heartbeat_{};
  // Set by handle() while run_range is inside tick(); examined after.
  bool shutdown_seen_ = false;
  bool revoked_ = false;

  // Observability: campaign run id (adopted from WELCOME), the cumulative
  // tallies each STATS frame reports, and the worker-local estimator.
  std::uint64_t run_id_ = 0;
  bool trace_header_written_ = false;
  bool resumed_shard_ = false;
  telemetry::CampaignEstimator estimator_;
  WorkerStats stats_;
  Clock::time_point started_{Clock::now()};
  Clock::time_point last_stats_{};
};

void WorkerLoop::open_shard() {
  if (file_exists(options_->shard_path)) {
    const fi::JournalContents contents =
        fi::read_journal(options_->shard_path);
    if (contents.header.fingerprint != fingerprint_) {
      throw std::runtime_error(
          "fabric: shard journal '" + options_->shard_path +
          "' was written by a different campaign configuration "
          "(fingerprint mismatch: shard has " +
          std::to_string(contents.header.fingerprint) +
          ", this campaign is " + std::to_string(fingerprint_) + ")");
    }
    for (const fi::JournalRecord& record : contents.records) {
      done_.emplace(record.attempt_index, attempt_from_trial(record.trial));
    }
    shard_ = std::make_unique<fi::CampaignJournalWriter>(
        options_->shard_path, contents.valid_bytes, config_.journal_fsync,
        config_.journal_batch);
    resumed_shard_ = true;
    *out_ << "[fabric] worker resumed shard '" << options_->shard_path
          << "': " << done_.size() << " attempts already durable";
    if (contents.dropped_bytes > 0) {
      *out_ << " (dropped " << contents.dropped_bytes << " torn bytes)";
    }
    *out_ << "\n";
  } else {
    fi::JournalHeader header;
    header.fingerprint = fingerprint_;
    header.time_windows = supervisor_->time_windows();
    header.workload = supervisor_->workload_name();
    header.run_id = run_id_;
    // Golden identity rides the shard header so a restarted worker on the
    // fast path can adopt the digest instead of re-running the golden.
    header.golden_digest = supervisor_->golden_digest();
    header.golden_seconds = supervisor_->golden_seconds();
    header.golden_output_bytes = supervisor_->golden_output_bytes();
    shard_ = std::make_unique<fi::CampaignJournalWriter>(
        options_->shard_path, header, config_.journal_fsync,
        config_.journal_batch);
  }
}

/// WELCOME establishes the worker's identity and the campaign's run id —
/// the shard journal header and every trace record from here on carry
/// both, so a shard or trace line can be tied back to the coordinator's
/// lease events (docs/FLEET_OBSERVABILITY.md).
void WorkerLoop::on_welcome(const Message& msg) {
  result_.worker_id = msg.worker;
  welcomed_ = true;
  if (run_id_ == 0) run_id_ = msg.run;
  result_.run_id = run_id_;
  if (trace_ != nullptr) {
    trace_->set_run_id(run_id_ != 0 ? telemetry::run_id_to_hex(run_id_)
                                    : std::string());
    trace_->set_worker(result_.worker_id);
  }
  // The shard is opened only now: a fresh shard's header wants the run id,
  // which only the coordinator knows.
  if (shard_ == nullptr) open_shard();
  if (trace_ != nullptr && !trace_header_written_) {
    trace_header_written_ = true;
    telemetry::TraceCampaign header;
    header.workload = supervisor_->workload_name();
    header.trials = config_.trials;
    header.seed = config_.seed;
    header.policy = std::string(to_string(config_.policy));
    for (const fi::FaultModel model : config_.models) {
      header.models.emplace_back(to_string(model));
    }
    header.time_windows = supervisor_->time_windows();
    header.resumed = resumed_shard_;
    header.jobs = config_.jobs;
    trace_->campaign(header);
  }
}

/// Connects (rate-limited by exponential backoff) and sends HELLO. The
/// HELLO carries the current lease, if any, so a coordinator that still
/// considers it outstanding re-adopts instead of double-issuing.
bool WorkerLoop::ensure_link() {
  if (link_ != nullptr && link_->alive()) return true;
  if (link_ != nullptr) {
    // Before abandoning a dead link, pop any frames it salvaged — a
    // kShutdown that raced our last send must win over a reconnect.
    drain_link();
    if (shutdown_seen_) return false;
  }
  const auto now = Clock::now();
  if (now < next_connect_) return false;
  const int fd = connect_to(parse_address(options_->address));
  if (fd < 0) {
    backoff_ms_ = backoff_ms_ <= 0.0
                      ? options_->reconnect_initial_ms
                      : std::min(backoff_ms_ * 2.0,
                                 options_->reconnect_initial_ms * 1024.0);
    next_connect_ = now + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  backoff_ms_));
    return false;
  }
  backoff_ms_ = 0.0;
  link_ = std::make_unique<Connection>(fd);
  welcomed_ = false;
  requested_ = false;
  util::log_debug() << "fabric: worker " << result_.worker_id
                    << " connected"
                    << (lease_.has_value()
                            ? " (claiming lease " +
                                  std::to_string(lease_->id) + ")"
                            : std::string());
  Message hello;
  hello.type = MsgType::kHello;
  hello.worker = result_.worker_id;
  hello.fingerprint = fingerprint_;
  if (lease_.has_value()) {
    hello.lease = lease_->id;
    hello.begin = lease_->begin;
    hello.end = lease_->end;
  }
  link_->send(hello);
  return true;
}

void WorkerLoop::handle(const Message& msg) {
  switch (msg.type) {
    case MsgType::kWelcome:
      on_welcome(msg);
      break;
    case MsgType::kReject:
      result_.rejected = true;
      result_.reject_reason = msg.text;
      link_->close();
      break;
    case MsgType::kShutdown:
      util::log_debug() << "fabric: worker " << result_.worker_id
                        << " received shutdown";
      shutdown_seen_ = true;
      break;
    case MsgType::kLeaseRevoke:
      if (lease_.has_value() && lease_->id == msg.lease) {
        util::log_warn() << "fabric: worker " << result_.worker_id
                         << " lease " << msg.lease
                         << " revoked (reclaimed by coordinator)";
        revoked_ = true;
      }
      break;
    case MsgType::kLeaseGrant:
      if (lease_.has_value()) {
        // Re-adoption ack for the lease already in hand (the reconnect
        // path) — nothing to do. Any other grant here is a protocol slip.
        if (lease_->id != msg.lease) {
          util::log_warn() << "fabric: worker " << result_.worker_id
                           << " ignoring unexpected grant " << msg.lease
                           << " while holding " << lease_->id;
        }
        break;
      }
      util::log_debug() << "fabric: worker " << result_.worker_id
                        << " granted lease " << msg.lease << " ["
                        << msg.begin << ", " << msg.end << ")";
      lease_ = CurrentLease{msg.lease, msg.begin, msg.end};
      if (trace_ != nullptr) trace_->set_lease(msg.lease);
      requested_ = false;
      break;
    case MsgType::kHello:
    case MsgType::kLeaseRequest:
    case MsgType::kLeaseDone:
    case MsgType::kHeartbeat:
    case MsgType::kGoodbye:
    case MsgType::kStats:
    default:  // default stays for out-of-range bytes decoded off the wire
      util::log_warn() << "fabric: worker ignoring unexpected "
                       << to_string(msg.type);
      break;
  }
}

void WorkerLoop::drain_link() {
  if (link_ == nullptr) return;
  // Pop buffered frames even when the link is already down: a failed
  // send salvages the peer's parting frames (kShutdown, typically) into
  // the inbound buffer, and skipping them here would miss the shutdown
  // and reconnect forever against a coordinator that already exited.
  if (link_->alive()) link_->pump();
  Message msg;
  try {
    // Keep popping even if pump() just hit EOF: the peer's final frames
    // (a kShutdown before close, typically) are already buffered.
    while (link_->next(&msg)) handle(msg);
  } catch (const std::runtime_error& error) {
    util::log_warn() << "fabric: worker dropping corrupt link: "
                     << error.what();
    link_->close();
  }
}

/// Ships the periodic observability snapshot — cumulative tallies,
/// throughput, and the worker-local estimator cells — on the same
/// off-hot-path timer as heartbeats. Best-effort: a lost frame costs
/// nothing but staleness in the coordinator's live view.
void WorkerLoop::maybe_send_stats() {
  if (options_->stats_interval_seconds <= 0.0) return;
  if (link_ == nullptr || !link_->alive() || !welcomed_) return;
  const auto now = Clock::now();
  if (last_stats_ != Clock::time_point{} &&
      std::chrono::duration<double>(now - last_stats_).count() <
          options_->stats_interval_seconds) {
    return;
  }
  last_stats_ = now;
  WorkerStats stats = stats_;
  stats.executed = result_.executed;
  stats.leases_done = result_.leases_done;
  stats.uptime_seconds =
      std::chrono::duration<double>(now - started_).count();
  stats.trials_per_sec =
      stats.uptime_seconds > 0.0
          ? static_cast<double>(result_.executed) / stats.uptime_seconds
          : 0.0;
  stats.estimator = estimator_.snapshot();
  // Latency anatomy rides the same frame when the worker profiles: the
  // cumulative snapshot, so a lost frame only costs freshness and the
  // coordinator can re-fold the latest from each worker exactly.
  if (config_.profiler != nullptr) {
    stats.profile = config_.profiler->snapshot();
  }
  Message msg;
  msg.type = MsgType::kStats;
  msg.worker = result_.worker_id;
  if (lease_.has_value()) msg.lease = lease_->id;
  msg.text = encode_stats(stats);
  link_->send(msg);
}

bool WorkerLoop::tick() {
  if (stop_requested()) return false;
  // Partition tolerance: keep executing the lease while disconnected —
  // the shard journal is the durable output either way. Reconnect
  // attempts ride the backoff clock; a successful HELLO re-claims the
  // lease so the coordinator can re-adopt it.
  ensure_link();
  drain_link();
  if (shutdown_seen_ || revoked_) return false;
  if (link_ != nullptr && link_->alive() && welcomed_ &&
      lease_.has_value()) {
    const auto now = Clock::now();
    if (std::chrono::duration<double>(now - last_heartbeat_).count() >=
        options_->heartbeat_seconds) {
      last_heartbeat_ = now;
      Message beat;
      beat.type = MsgType::kHeartbeat;
      beat.worker = result_.worker_id;
      beat.lease = lease_->id;
      beat.injected = counts_.injected;
      beat.masked = counts_.masked;
      beat.sdc = counts_.sdc;
      beat.due = counts_.due;
      link_->send(beat);
    }
  }
  maybe_send_stats();
  return true;
}

void WorkerLoop::note_commit(const fi::TrialResult& trial) {
  switch (trial.outcome) {
    case fi::Outcome::kMasked:
      ++stats_.masked;
      break;
    case fi::Outcome::kSdc:
      ++stats_.sdc;
      break;
    case fi::Outcome::kDue:
      ++stats_.due;
      ++stats_.due_kinds[std::string(to_string(trial.due_kind))];
      break;
    case fi::Outcome::kNotInjected:
      ++stats_.not_injected;
      break;
  }
}

void WorkerLoop::send_done() {
  shard_->sync();  // phicheck:durable-before(done)
  Message done;
  done.type = MsgType::kLeaseDone;
  done.worker = result_.worker_id;
  done.lease = lease_->id;
  done.begin = lease_->begin;
  done.end = lease_->end;
  done.progress = lease_->end;
  done.injected = counts_.injected;
  done.masked = counts_.masked;
  done.sdc = counts_.sdc;
  done.due = counts_.due;
  // Attach the per-attempt classification of the whole range (positional:
  // entry i is attempt begin+i) — what lets the coordinator keep an exact
  // fleet tally without reading any shard.
  std::vector<AttemptOutcome> attempts;
  attempts.reserve(lease_->end - lease_->begin);
  for (std::uint64_t index = lease_->begin; index < lease_->end; ++index) {
    const auto it = done_.find(index);
    if (it == done_.end()) {
      attempts.clear();  // incomplete (cannot happen) — send no detail
      break;
    }
    attempts.push_back(it->second);
  }
  done.text = encode_attempts(attempts);
  util::log_debug() << "fabric: worker " << result_.worker_id
                    << " done with lease " << done.lease << " ("
                    << done.injected << " injected)";
  link_->send(done);  // phicheck:wire-after(done)
  ++result_.leases_done;
  lease_.reset();
  if (trace_ != nullptr) trace_->set_lease(0);
  // If the link died before the send landed, the lease stays claimed in
  // the next HELLO... except we just dropped it. That is still safe: the
  // coordinator's deadline reclaims the range and some worker re-executes
  // it into its shard; the merge dedups. Holding the lease for a
  // Done-retry would be cheaper, but the simple path is also correct.
}

void WorkerLoop::execute_lease() {
  // Skip the prefix this shard already holds (a restarted worker resuming
  // its own lease). Base counts come from those records.
  counts_ = {};
  std::uint64_t first_missing = lease_->begin;
  for (auto it = done_.lower_bound(lease_->begin);
       it != done_.end() && it->first == first_missing &&
       it->first < lease_->end;
       ++it) {
    counts_.add(outcome_from_name(it->second.outcome));
    ++first_missing;
  }
  last_heartbeat_ = Clock::now();

  if (first_missing < lease_->end) {
    fi::Campaign campaign(*supervisor_, config_);
    fi::RangeHooks hooks;
    hooks.on_commit = [this](const fi::JournalRecord& record) {
      // Re-executed attempts (post-reclaim overlap) may duplicate records
      // already in another worker's shard; within THIS shard each index
      // appears once because run_range starts past first_missing.
      shard_->append(record);
      done_.emplace(record.attempt_index, attempt_from_trial(record.trial));
      counts_.add(record.trial.outcome);
      note_commit(record.trial);
      ++result_.executed;
    };
    hooks.on_tick = [this] { return tick(); };
    const fi::RangeResult range =
        campaign.run_range(first_missing, lease_->end, hooks);
    if (range.aborted) {
      result_.aborted = true;
      return;
    }
    if (range.cancelled) {
      if (revoked_) {
        lease_.reset();
        if (trace_ != nullptr) trace_->set_lease(0);
        revoked_ = false;
      }
      // shutdown_seen_ / stop_flag: leave the lease claimed; the main
      // loop exits and a later resume can finish it.
      return;
    }
  }
  // Lease fully durable in the shard — report it (if we can).
  if (link_ != nullptr && link_->alive() && welcomed_) {
    send_done();
  }
  // Disconnected: keep the lease; the reconnect HELLO claims it, the
  // coordinator re-adopts and re-grants, execute_lease() finds nothing
  // missing, and the Done goes out then.
}

WorkerResult WorkerLoop::run() {
  if (options_->shard_path.empty()) {
    throw std::runtime_error(
        "fabric: worker requires a shard journal path (--shard-journal)");
  }
  *out_ << "[fabric] worker connecting to " << options_->address
        << ", shard '" << options_->shard_path << "'\n";
  while (true) {
    if (stop_requested()) {
      result_.interrupted = true;
      break;
    }
    if (shutdown_seen_) {
      result_.complete = true;
      break;
    }
    if (result_.rejected || result_.aborted) break;

    if (!ensure_link()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (welcomed_ && lease_.has_value()) {
      execute_lease();
      continue;
    }
    if (welcomed_ && !lease_.has_value() && !requested_) {
      Message request;
      request.type = MsgType::kLeaseRequest;
      request.worker = result_.worker_id;
      link_->send(request);
      requested_ = true;
    }
    maybe_send_stats();
    pollfd pfd{link_->fd(), POLLIN, 0};
    util::io::poll_retry(&pfd, 1, 100);
    drain_link();
    if (link_ != nullptr && !link_->alive()) {
      // Lost the coordinator between leases: re-request after reconnect.
      util::log_debug() << "fabric: worker " << result_.worker_id
                        << " lost coordinator link";
      requested_ = false;
    }
  }
  if (link_ != nullptr && link_->alive()) {
    Message goodbye;
    goodbye.type = MsgType::kGoodbye;
    goodbye.worker = result_.worker_id;
    link_->send(goodbye);
    link_->close();
  }
  if (shard_ != nullptr) shard_->sync();
  if (metrics_ != nullptr) {
    metrics_->counter("fabric.leases_done").inc(result_.leases_done);
  }
  *out_ << "[fabric] worker " << result_.worker_id << " done: "
        << (result_.complete
                ? "campaign complete"
                : (result_.interrupted
                       ? "interrupted"
                       : (result_.rejected ? "rejected" : "stopped")))
        << ", " << result_.leases_done << " leases, " << result_.executed
        << " attempts executed\n";
  return result_;
}

}  // namespace

WorkerResult run_worker(fi::TrialSupervisor& supervisor,
                        const fi::CampaignConfig& campaign,
                        std::uint64_t fingerprint,
                        const FabricOptions& options,
                        telemetry::MetricsRegistry* metrics,
                        telemetry::TraceWriter* trace, std::ostream& out) {
  WorkerLoop loop(supervisor, campaign, fingerprint, options, metrics,
                  trace, out);
  return loop.run();
}

}  // namespace phifi::fabric

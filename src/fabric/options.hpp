// Shared knobs for the campaign fabric's coordinator and worker roles.
#pragma once

#include <cstdint>
#include <string>

namespace phifi::fabric {

struct FabricOptions {
  /// Coordinator: listen address. Worker: coordinator address to connect
  /// to. "unix:/path/to.sock" or "tcp:host:port".
  std::string address;
  /// Coordinator: crash-durable lease ledger path ("" = in-memory only —
  /// a coordinator restart then re-leases everything not yet merged).
  std::string ledger_path;
  /// Worker: shard journal path (required; this is the worker's output).
  std::string shard_path;
  /// Attempt indices per lease. Smaller = finer re-balancing after a
  /// worker loss, more coordinator round trips.
  std::uint64_t lease_size = 32;
  /// Worker heartbeat period while executing a lease.
  double heartbeat_seconds = 1.0;
  /// Coordinator reclaims a lease this long after its last heartbeat.
  /// Must comfortably exceed heartbeat_seconds plus one trial's runtime.
  double lease_timeout_seconds = 5.0;
  /// Worker reconnect backoff: initial delay, doubled per failure up to
  /// 10 doublings.
  double reconnect_initial_ms = 200.0;
  /// Worker: period of the STATS observability snapshot (fabric/stats.hpp),
  /// sent from the same off-hot-path tick as heartbeats. 0 disables.
  double stats_interval_seconds = 1.0;
  /// Coordinator: scrape endpoint address ("tcp:host:port" or
  /// "unix:/path"; "" = no endpoint). Serves /metrics, /campaign.json,
  /// /healthz from the coordinator poll loop (fabric/http.hpp).
  std::string serve_metrics;
  /// Coordinator: campaign run id stamped into traces, shard journals and
  /// history records. 0 = generate one (or adopt the ledger's on resume).
  std::uint64_t run_id = 0;
};

}  // namespace phifi::fabric

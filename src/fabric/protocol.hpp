// Fabric wire protocol: framed, CRC-checked messages between the campaign
// coordinator and its workers.
//
// The fabric shards one campaign's attempt-index space across worker
// processes (FINJ-style orchestration; see docs/FABRIC.md). The protocol
// is deliberately tiny: one fixed-field message struct, length-prefixed
// frames checksummed with the same CRC-32 the journal uses, over a UNIX
// or TCP stream socket. Everything here runs off the per-trial hot path —
// a worker touches the socket only from the scheduler tick, never inside
// a trial (the ZOFI design point: orchestration cost must not tax the
// trial loop).
//
// Frame layout (integers little-endian, mirroring the journal):
//   u32 payload_size | payload | u32 crc32(payload)
// Payload: u8 type, then the fixed u64 fields, then u32 text_len + text.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace phifi::fabric {

// phicheck:exhaustive-switch — adding a frame type must be visible at every
// dispatch site; defaults are reserved for out-of-range bytes off the wire.
enum class MsgType : std::uint8_t {
  kHello = 1,     ///< worker → coordinator: fingerprint + optional lease claim
  kWelcome,       ///< coordinator → worker: assigned worker id
  kReject,        ///< coordinator → worker: handshake refused (text = reason)
  kLeaseRequest,  ///< worker → coordinator: give me a range
  kLeaseGrant,    ///< coordinator → worker: lease_id covers [begin, end)
  kLeaseRevoke,   ///< coordinator → worker: abandon lease_id (reclaimed)
  kLeaseDone,     ///< worker → coordinator: lease_id finished, counts attached
  kHeartbeat,     ///< worker → coordinator: lease liveness + progress
  kShutdown,      ///< coordinator → worker: campaign over, exit
  kGoodbye,       ///< worker → coordinator: leaving voluntarily
  kStats,         ///< worker → coordinator: observability snapshot (text)
};

std::string_view to_string(MsgType type);

/// One protocol message. A fixed field set keeps (de)serialization dumb:
/// unused fields ride along as zero.
struct Message {
  MsgType type = MsgType::kHello;
  std::uint64_t worker = 0;       ///< worker id (0 in a first HELLO)
  std::uint64_t fingerprint = 0;  ///< campaign fingerprint (HELLO)
  std::uint64_t lease = 0;        ///< lease id
  std::uint64_t begin = 0;        ///< lease range start (inclusive)
  std::uint64_t end = 0;          ///< lease range end (exclusive)
  std::uint64_t progress = 0;     ///< next uncommitted index in the lease
  std::uint64_t injected = 0;     ///< injected completions in the lease
  std::uint64_t masked = 0;       ///< of which Masked
  std::uint64_t sdc = 0;          ///< of which SDC
  std::uint64_t due = 0;          ///< of which DUE
  std::uint64_t run = 0;          ///< campaign run id (WELCOME → worker)
  std::string text;               ///< reject reason / stats / lease detail
};

/// Serializes one message into a complete frame.
std::vector<std::uint8_t> encode_message(const Message& message);

/// Extracts one complete frame from the front of `buffer`, consuming it.
/// Returns false when the buffer holds no complete frame yet. Throws
/// std::runtime_error on a corrupt frame (bad CRC or absurd size) — a
/// stream that desynchronized cannot be trusted further.
bool decode_message(std::vector<std::uint8_t>& buffer, Message* out);

/// Fabric endpoint address: "unix:/path/to.sock" or "tcp:host:port".
struct Address {
  bool is_unix = true;
  std::string path;  ///< UNIX socket path
  std::string host;  ///< TCP host
  std::uint16_t port = 0;
};

/// Parses an address spec; throws std::runtime_error on a malformed one.
Address parse_address(const std::string& spec);

/// Binds + listens (unlinking a stale UNIX socket path first). Throws on
/// failure. The returned fd is nonblocking and close-on-exec.
int listen_on(const Address& address);

/// One connect attempt. Returns the connected fd (nonblocking, CLOEXEC) or
/// -1 on failure — the caller owns the retry/backoff policy. A pending TCP
/// connect is waited on for at most `timeout_ms`.
int connect_to(const Address& address, int timeout_ms = 1000);

/// Accepts one pending connection; -1 when none is waiting.
int accept_on(int listen_fd);

/// A buffered framed-message stream over a nonblocking socket.
class Connection {
 public:
  explicit Connection(int fd);  ///< takes ownership of the fd
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Writes one frame. Small messages on a healthy socket never block;
  /// a full send buffer is waited out briefly. Returns false once the
  /// connection is dead (peer gone, write error).
  bool send(const Message& message);

  /// Reads whatever bytes are available into the inbound buffer. Returns
  /// false on EOF or a read error (the connection is dead; buffered
  /// complete frames are still poppable via next()).
  bool pump();

  /// Pops the next complete inbound frame. Returns false when none is
  /// buffered. Throws std::runtime_error on a corrupt frame.
  bool next(Message* out);

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool alive() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> inbound_;
};

}  // namespace phifi::fabric

// Fleet observability payloads: the STATS frame body and the per-attempt
// outcome detail attached to LeaseDone frames and ledger DONE records.
//
// Both payloads ride the protocol's `text` field as compact JSON. They are
// produced off the trial hot path (STATS on the heartbeat timer, detail
// once per completed lease), which is the FINJ/ZOFI division of labor:
// centralized collection of monitoring data without taxing the trial loop.
//
// The per-attempt detail is what makes the coordinator's fleet tally
// *exact* rather than approximate: accepted LeaseDone ranges tile the
// attempt-index space disjointly, so replaying their details in attempt
// order reproduces, bit for bit, the estimator state a --jobs 1 run would
// reach at the same boundary (see docs/FLEET_OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "core/supervisor.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/profiler.hpp"

namespace phifi::fabric {

/// One committed attempt's classification — everything the fleet
/// estimator and the merge boundary rule need, nothing timing-dependent.
struct AttemptOutcome {
  std::string outcome;   ///< "Masked" / "SDC" / "DUE" / "NotInjected"
  std::string due_kind;  ///< "none" / "crash" / "hang" / ...
  std::string model;     ///< fault model name
  std::string category;  ///< code-portion category
  unsigned window = 0;   ///< execution-time window
  bool injected = false;
};

/// Encodes the attempts of one lease range, in attempt order, as a JSON
/// array (the attempt index is positional: entry i is `begin + i`).
std::string encode_attempts(const std::vector<AttemptOutcome>& attempts);

/// Decodes an attempt-detail payload. Throws std::runtime_error on
/// malformed input; an empty string decodes to an empty vector (a frame
/// from a sender that attached no detail).
std::vector<AttemptOutcome> decode_attempts(const std::string& text);

/// Classifies one committed trial into the wire form — the single mapping
/// both the worker (at commit) and the coordinator (on ledger replay of a
/// merged journal) use, so the fleet tally cannot drift from the shards.
AttemptOutcome attempt_from_trial(const fi::TrialResult& trial);

/// Maps an AttemptOutcome::outcome name back to the core enum. Throws
/// std::runtime_error on an unknown name (a malformed or hostile frame).
fi::Outcome outcome_from_name(const std::string& name);

/// A worker's periodic observability snapshot: cumulative tallies over
/// everything this process has committed (including overshoot and work on
/// leases later reclaimed elsewhere — it describes the worker, not the
/// campaign; the exact campaign tally comes from LeaseDone details).
struct WorkerStats {
  std::uint64_t executed = 0;      ///< attempts committed by this process
  std::uint64_t leases_done = 0;   ///< leases completed and acknowledged
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  std::uint64_t not_injected = 0;
  double trials_per_sec = 0.0;     ///< committed attempts / uptime
  double uptime_seconds = 0.0;     ///< since the worker process started
  std::map<std::string, std::uint64_t> due_kinds;
  telemetry::EstimatorSnapshot estimator;  ///< this worker's cells
  /// Cumulative latency-anatomy histograms (only encoded when non-empty;
  /// a worker running without --profile sends none). The coordinator
  /// re-folds the latest snapshot of every worker, so percentiles are
  /// exact over the fleet, not an average of averages.
  telemetry::ProfileSnapshot profile;
};

std::string encode_stats(const WorkerStats& stats);

/// Throws std::runtime_error on malformed input.
WorkerStats decode_stats(const std::string& text);

}  // namespace phifi::fabric

// Minimal single-threaded HTTP/1.1 scrape endpoint for a live campaign.
//
// The coordinator is a poll loop; Prometheus (and phifi_top) want to GET
// /metrics and /campaign.json while the campaign runs. ScrapeServer slots
// into that loop: the coordinator folds its fds into the same poll() set
// and calls service() once per iteration. No threads, no blocking reads —
// a slow or stalled scraper can never stall lease traffic. Responses are
// built whole and drained nonblockingly; every connection is
// Connection: close (scrapes are one request, keep-alive buys nothing).
//
// Routes:
//   GET /metrics        → the metrics handler (OpenMetrics text)
//   GET /campaign.json  → the campaign handler (live fleet state)
//   GET /healthz        → "ok\n"
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fabric/protocol.hpp"

struct pollfd;

namespace phifi::fabric {

class ScrapeServer {
 public:
  using Handler = std::function<std::string()>;

  /// Binds and listens on `spec` ("tcp:host:port" or "unix:/path"; TCP
  /// port 0 binds an ephemeral port — see port()). Throws
  /// std::runtime_error on a malformed spec or bind failure.
  explicit ScrapeServer(const std::string& spec);
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  void set_metrics_handler(Handler handler);
  void set_campaign_handler(Handler handler);

  /// Appends the listen fd and every in-flight client fd to `fds` with the
  /// events each one is waiting for.
  void collect_fds(std::vector<pollfd>& fds) const;

  /// Accepts pending connections, reads requests, writes responses.
  /// Nonblocking throughout; call once per poll-loop iteration.
  void service();

  /// The bound TCP port (resolves port 0 to the kernel's choice); 0 for
  /// UNIX endpoints.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// In-flight client connections (tests/diagnostics).
  [[nodiscard]] std::size_t clients() const { return clients_.size(); }

 private:
  struct Client {
    int fd = -1;
    std::string inbound;
    std::string outbound;
    std::size_t sent = 0;
    bool responding = false;
  };

  void respond(Client& client);
  [[nodiscard]] std::string handle(const std::string& method,
                                   const std::string& path) const;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unix_path_;
  Handler metrics_handler_;
  Handler campaign_handler_;
  std::vector<Client> clients_;
};

}  // namespace phifi::fabric

// Campaign fabric worker: leases attempt-index ranges from a coordinator,
// executes them with the ordinary slot scheduler, and journals every
// committed record to its own checksummed shard. See docs/FABRIC.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/campaign.hpp"
#include "core/supervisor.hpp"
#include "fabric/options.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace phifi::fabric {

struct WorkerResult {
  bool complete = false;     ///< coordinator said the campaign is over
  bool interrupted = false;  ///< stop_flag fired
  bool rejected = false;     ///< handshake refused (fingerprint mismatch)
  bool aborted = false;      ///< circuit breaker tripped mid-lease
  std::string reject_reason;
  std::uint64_t worker_id = 0;
  /// Campaign run id adopted from the coordinator's WELCOME (0 = never
  /// welcomed); stamped into the shard header and every trace record.
  std::uint64_t run_id = 0;
  std::uint64_t leases_done = 0;
  /// Attempts executed by this process this run (excludes shard-resume
  /// records replayed from disk).
  std::uint64_t executed = 0;
};

/// Runs the worker loop: connect (with exponential backoff), lease,
/// execute via Campaign::run_range, journal to the shard, heartbeat,
/// repeat — until the coordinator sends kShutdown or stop_flag fires.
///
/// The shard journal (options.shard_path) is the worker's durable output
/// and its resume state: a restarted worker replays it, skips attempts it
/// already committed, and reclaims its in-flight lease via the HELLO
/// handshake. `campaign.journal_path` is ignored here — the shard is the
/// journal.
WorkerResult run_worker(fi::TrialSupervisor& supervisor,
                        const fi::CampaignConfig& campaign,
                        std::uint64_t fingerprint,
                        const FabricOptions& options,
                        telemetry::MetricsRegistry* metrics,
                        telemetry::TraceWriter* trace, std::ostream& out);

}  // namespace phifi::fabric

// Deterministic shard merge: folds per-worker journal shards back into
// the single journal a --jobs 1 run would have written.
//
// Each fabric worker journals the attempts it executed into its own
// checksummed shard. Because trial seeds are counter-indexed and the
// commit point orders by attempt index, the shards are a partition (plus
// possible overlap from reclaimed leases) of exactly the records a
// sequential run produces. The merge re-derives the campaign boundary —
// the trial count or the --stop-ci-width stop rule, evaluated in attempt
// order with the very function the live scheduler and journal replay use
// — so the merged journal's tallies, estimator state, and fingerprint are
// bit-identical to --jobs 1 (timing fields aside, which no tally reads).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hpp"

namespace phifi::fabric {

struct MergeOptions {
  std::vector<std::string> shards;  ///< shard journal paths
  std::string out_path;             ///< merged journal to write
  /// Accept a shard whose final record is torn (a worker killed
  /// mid-write). Off by default: a torn shard is refused with a
  /// diagnostic naming the file, because silent tail loss looks exactly
  /// like missing work. Safe to enable for a crashed worker whose lease
  /// was re-executed elsewhere — the contiguity check still catches any
  /// genuinely missing range.
  bool allow_torn_tail = false;
};

struct MergeSummary {
  std::uint64_t shard_records = 0;  ///< total records read across shards
  std::uint64_t merged = 0;         ///< records written to the output
  std::uint64_t duplicates = 0;     ///< reclaim overlap dropped
  std::uint64_t overshoot = 0;      ///< records past the campaign boundary
  std::uint64_t injected = 0;       ///< injected completions in the output
  fi::OutcomeTally overall;         ///< tallies of the merged prefix
  bool stopped_early = false;  ///< boundary set by the --stop-ci-width rule
};

/// Merges shards into `options.out_path`. Throws std::runtime_error — the
/// message names the offending shard — when a shard has a mismatched
/// fingerprint or workload, is torn (without allow_torn_tail), or when the
/// union of shards leaves a gap before the campaign boundary.
MergeSummary merge_shards(const fi::CampaignConfig& config,
                          std::string_view workload, unsigned time_windows,
                          const MergeOptions& options);

}  // namespace phifi::fabric

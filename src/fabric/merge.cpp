#include "fabric/merge.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace phifi::fabric {

MergeSummary merge_shards(const fi::CampaignConfig& config,
                          std::string_view workload, unsigned time_windows,
                          const MergeOptions& options) {
  if (options.shards.empty()) {
    throw std::runtime_error("merge: no shard journals given");
  }
  if (options.out_path.empty()) {
    throw std::runtime_error("merge: no output journal path given");
  }
  const std::uint64_t expected_fp =
      fi::campaign_fingerprint(config, workload, time_windows);

  // Shards are read in sorted-path order so duplicate resolution (which
  // copy of a re-executed attempt survives — they differ only in timing
  // fields) does not depend on argument order.
  std::vector<std::string> shard_paths = options.shards;
  std::sort(shard_paths.begin(), shard_paths.end());

  MergeSummary summary;
  std::vector<fi::JournalRecord> pool;
  std::uint64_t run_id = 0;
  for (const std::string& path : shard_paths) {
    const fi::JournalContents contents = fi::read_journal(path);
    // Every shard of one fabric campaign carries the coordinator's run id;
    // the merged journal keeps it so the correlation survives the merge.
    if (run_id == 0) run_id = contents.header.run_id;
    if (contents.header.fingerprint != expected_fp) {
      throw std::runtime_error(
          "merge refused: shard '" + path +
          "' was written by a different campaign configuration "
          "(fingerprint mismatch — check workload, seed, policy, models, "
          "trials, and stop_ci_width)");
    }
    if (contents.dropped_bytes > 0) {
      if (!options.allow_torn_tail) {
        throw std::runtime_error(
            "merge refused: shard '" + path + "' has " +
            std::to_string(contents.dropped_bytes) +
            " bytes of torn tail (truncated mid-record). If this shard "
            "belongs to a crashed worker whose lease was re-executed, "
            "pass --allow-torn-tail; the contiguity check still catches "
            "missing work");
      }
      util::log_warn() << "merge: shard '" << path << "' dropped "
                       << contents.dropped_bytes
                       << " bytes of torn tail (--allow-torn-tail)";
    }
    summary.shard_records += contents.records.size();
    pool.insert(pool.end(), contents.records.begin(),
                contents.records.end());
  }

  // Attempt-index order; stable keeps the sorted-path tie-break for
  // duplicates from reclaimed-lease overlap.
  std::stable_sort(pool.begin(), pool.end(),
                   [](const fi::JournalRecord& a,
                      const fi::JournalRecord& b) {
                     return a.attempt_index < b.attempt_index;
                   });

  // Walk in order, re-deriving the campaign boundary exactly as the live
  // commit point and journal replay do: records stop counting at the
  // trials-th injected completion or the --stop-ci-width boundary, and
  // everything past it is worker overshoot (a lease runs to completion
  // even when the campaign ends mid-range).
  fi::CampaignResult scratch;
  scratch.by_window.resize(time_windows);
  std::vector<const fi::JournalRecord*> selected;
  std::uint64_t expected = 0;
  std::uint64_t completed = 0;
  bool boundary = false;
  for (const fi::JournalRecord& record : pool) {
    if (boundary) {
      ++summary.overshoot;
      continue;
    }
    if (record.attempt_index < expected) {
      ++summary.duplicates;
      continue;
    }
    if (record.attempt_index > expected) {
      throw std::runtime_error(
          "merge refused: attempts [" + std::to_string(expected) + ", " +
          std::to_string(record.attempt_index) +
          ") are in no shard — a lease was never completed. Re-run the "
          "campaign fabric (or the missing workers) to fill the gap");
    }
    selected.push_back(&record);
    fi::accumulate_trial(scratch, record.trial);
    ++expected;
    if (record.trial.outcome != fi::Outcome::kNotInjected) ++completed;
    if (completed >= config.trials) {
      boundary = true;
    } else if (fi::campaign_ci_stop_reached(config, scratch.overall)) {
      boundary = true;
      summary.stopped_early = true;
    }
  }
  const std::uint64_t budget =
      config.trials * (1 + config.max_retry_factor);
  if (!boundary && expected < budget) {
    throw std::runtime_error(
        "merge refused: shards cover attempts [0, " +
        std::to_string(expected) + ") with only " +
        std::to_string(completed) + "/" + std::to_string(config.trials) +
        " injected trials — the campaign is incomplete");
  }
  if (!boundary) {
    // The full retry budget is covered without reaching the trial count —
    // the same way a --jobs 1 run ends when NotInjected retries exhaust
    // the budget. Merge what exists; phifi_run will report the shortfall.
    util::log_warn() << "merge: attempt budget exhausted with "
                     << completed << "/" << config.trials
                     << " injected trials";
  }

  fi::JournalHeader header;
  header.fingerprint = expected_fp;
  header.time_windows = time_windows;
  header.workload = std::string(workload);
  header.run_id = run_id;
  fi::CampaignJournalWriter writer(options.out_path, header,
                                   fi::JournalFsync::kOnClose);
  for (const fi::JournalRecord* record : selected) {
    writer.append(*record);
  }
  writer.sync();

  summary.merged = selected.size();
  summary.injected = completed;
  summary.overall = scratch.overall;
  return summary;
}

}  // namespace phifi::fabric

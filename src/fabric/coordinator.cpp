#include "fabric/coordinator.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/http.hpp"
#include "fabric/lease.hpp"
#include "fabric/protocol.hpp"
#include "fabric/stats.hpp"
#include "telemetry/history.hpp"  // run_id_to_hex, generate_run_id
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/posix_io.hpp"
#include "util/statistics.hpp"

namespace phifi::fabric {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double>(now - then).count();
}

/// Per-connection coordinator state. worker == 0 until the HELLO arrives.
struct WorkerConn {
  std::unique_ptr<Connection> link;
  std::uint64_t worker = 0;
  /// Asked for a lease while none was grantable; served on next reclaim.
  bool hungry = false;
  // Last cumulative per-lease counts reported (heartbeat/done), so the
  // aggregate campaign counters advance by deltas, never double-counting.
  std::uint64_t last_injected = 0;
  std::uint64_t last_masked = 0;
  std::uint64_t last_sdc = 0;
  std::uint64_t last_due = 0;
};

/// What the coordinator remembers about a worker *identity* — unlike
/// WorkerConn this survives disconnects, so a SIGKILLed worker shows up
/// as a dead row in /campaign.json instead of vanishing.
struct WorkerView {
  bool connected = false;
  Clock::time_point joined{};
  Clock::time_point last_seen{};  ///< last frame of any kind
  bool have_stats = false;
  WorkerStats stats;              ///< last STATS snapshot, verbatim
  std::uint64_t lease = 0;        ///< current lease id (0 = none)
  std::uint64_t lease_begin = 0;
  std::uint64_t lease_end = 0;
  Clock::time_point lease_since{};
};

/// The exact fleet tally: per-attempt LeaseDone details buffered by range
/// begin, folded at the contiguous frontier with the merge boundary rule
/// (merge.cpp), so the live numbers are bit-identical to a post-campaign
/// phifi_merge + phifi_parse of the same accepted ranges.
struct FleetState {
  std::map<std::uint64_t, std::vector<AttemptOutcome>> details;
  std::uint64_t frontier = 0;  ///< next attempt index to fold
  fi::OutcomeTally tally;      ///< injected attempts inside the boundary
  std::uint64_t not_injected = 0;
  std::map<std::string, std::uint64_t> due_kinds;
  bool boundary = false;
  bool stopped_early = false;
};

struct LoopState {
  const fi::CampaignConfig* config = nullptr;
  std::uint64_t fingerprint = 0;
  const FabricOptions* options = nullptr;
  LeaseTable* table = nullptr;
  LeaseLedgerWriter* ledger = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TraceWriter* trace = nullptr;
  telemetry::CampaignEstimator* estimator = nullptr;
  CoordinatorResult* result = nullptr;
  std::vector<std::unique_ptr<WorkerConn>>* conns = nullptr;
  std::map<std::uint64_t, WorkerView>* views = nullptr;
  FleetState* fleet = nullptr;
  std::uint64_t next_worker_id = 1;
  std::uint64_t run_id = 0;
  Clock::time_point started{};
};

double trace_now_ms(const LoopState& state) {
  return state.trace != nullptr ? state.trace->now_ms() : 0.0;
}

void trace_fabric(const LoopState& state, const std::string& kind,
                  std::uint64_t worker, const Lease* lease,
                  std::uint64_t injected = 0) {
  if (state.trace == nullptr) return;
  telemetry::TraceFabricEvent event;
  event.kind = kind;
  event.worker = worker;
  if (lease != nullptr) {
    event.lease = lease->id;
    event.begin = lease->begin;
    event.end = lease->end;
  }
  event.injected = injected;
  event.ts_ms = trace_now_ms(state);
  state.trace->fabric(event);
}

/// Folds a worker's cumulative per-lease counts into the campaign-wide
/// counters by delta, updating the connection's high-water marks.
void feed_aggregate(LoopState& state, WorkerConn& conn, const Message& msg) {
  if (state.metrics == nullptr) return;
  const auto delta = [](std::uint64_t now, std::uint64_t& last) {
    const std::uint64_t d = now > last ? now - last : 0;
    last = std::max(last, now);
    return d;
  };
  state.metrics->counter("campaign.completed")
      .inc(delta(msg.injected, conn.last_injected));
  state.metrics->counter("campaign.masked")
      .inc(delta(msg.masked, conn.last_masked));
  state.metrics->counter("campaign.sdc").inc(delta(msg.sdc, conn.last_sdc));
  state.metrics->counter("campaign.due").inc(delta(msg.due, conn.last_due));
}

void reset_lease_counts(WorkerConn& conn) {
  conn.last_injected = 0;
  conn.last_masked = 0;
  conn.last_sdc = 0;
  conn.last_due = 0;
}

Clock::time_point lease_deadline(const LoopState& state) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                state.options->lease_timeout_seconds));
}

void ledger_append(LoopState& state, LedgerKind kind, const Lease& lease,
                   std::uint64_t injected = 0, std::uint64_t sdc = 0,
                   const std::string& detail = std::string()) {
  if (state.ledger == nullptr) return;
  LedgerRecord record;
  record.kind = kind;
  record.lease = lease.id;
  record.begin = lease.begin;
  record.end = lease.end;
  record.injected = injected;
  record.sdc = sdc;
  record.detail = detail;
  state.ledger->append(record);
}

telemetry::EstimatorOutcome to_estimator_outcome(fi::Outcome outcome) {
  switch (outcome) {
    case fi::Outcome::kSdc:
      return telemetry::EstimatorOutcome::kSdc;
    case fi::Outcome::kDue:
      return telemetry::EstimatorOutcome::kDue;
    case fi::Outcome::kMasked:
    case fi::Outcome::kNotInjected:
      // NotInjected attempts never reach the estimator (advance_fleet
      // filters them); mapping them like masked keeps this total.
      return telemetry::EstimatorOutcome::kMasked;
  }
  return telemetry::EstimatorOutcome::kMasked;  // unreachable
}

/// Buffers the per-attempt detail of one accepted DONE range. A count
/// mismatch (or undecodable payload) drops the detail: the fleet frontier
/// then stalls at that range, which degrades the live tally to "partial"
/// but never to "wrong".
void register_detail(LoopState& state, std::uint64_t begin,
                     std::uint64_t end, const std::string& text) {
  if (text.empty()) return;
  std::vector<AttemptOutcome> attempts;
  try {
    attempts = decode_attempts(text);
  } catch (const std::runtime_error& error) {
    util::log_warn() << "fabric: dropping undecodable lease detail for ["
                     << begin << ", " << end << "): " << error.what();
    return;
  }
  if (attempts.size() != end - begin) {
    util::log_warn() << "fabric: lease detail for [" << begin << ", " << end
                     << ") has " << attempts.size()
                     << " entries; expected " << (end - begin)
                     << " — dropping it";
    return;
  }
  state.fleet->details.emplace(begin, std::move(attempts));
}

/// Folds buffered details at the contiguous frontier into the fleet tally
/// and the estimator, applying the merge boundary rule after every
/// injected attempt (merge.cpp does exactly this walk over the merged
/// journal). Publishes the estimator gauges when anything advanced.
void advance_fleet(LoopState& state) {
  FleetState& fleet = *state.fleet;
  bool advanced = false;
  while (!fleet.boundary) {
    const auto it = fleet.details.find(fleet.frontier);
    if (it == fleet.details.end()) break;
    for (const AttemptOutcome& attempt : it->second) {
      if (fleet.boundary) break;  // rest of the range is overshoot
      fi::Outcome outcome = fi::Outcome::kNotInjected;
      try {
        outcome = outcome_from_name(attempt.outcome);
      } catch (const std::runtime_error& error) {
        util::log_warn() << "fabric: " << error.what()
                         << " in lease detail; counting as NotInjected";
      }
      if (outcome == fi::Outcome::kNotInjected) {
        ++fleet.not_injected;
        continue;
      }
      fleet.tally.add(outcome);
      if (outcome == fi::Outcome::kDue) {
        ++fleet.due_kinds[attempt.due_kind];
      }
      if (state.estimator != nullptr) {
        state.estimator->record(to_estimator_outcome(outcome),
                                attempt.model, attempt.window,
                                attempt.category, attempt.injected);
      }
      if (fleet.tally.total() >= state.config->trials) {
        fleet.boundary = true;
      } else if (fi::campaign_ci_stop_reached(*state.config, fleet.tally)) {
        fleet.boundary = true;
        fleet.stopped_early = true;
      }
    }
    fleet.frontier += it->second.size();
    fleet.details.erase(it);
    advanced = true;
  }
  if (advanced && state.estimator != nullptr && state.metrics != nullptr) {
    state.estimator->publish(*state.metrics);
  }
}

/// Folds the latest profile snapshot of every worker that sent one. Each
/// STATS snapshot is cumulative, so re-folding the latest from scratch on
/// every refresh is exact — the result is bit-identical to the histogram a
/// --jobs 1 run of the same committed trials would hold (profiler.hpp).
telemetry::ProfileSnapshot fold_fleet_profile(const LoopState& state) {
  telemetry::ProfileSnapshot fleet;
  for (const auto& [id, view] : *state.views) {
    if (view.have_stats) fleet.fold(view.stats.profile);
  }
  return fleet;
}

/// Refreshes the per-worker gauges (fabric.worker.<id>.*) from the view
/// table — heartbeat lag, lease age, and last-reported throughput — and
/// the fleet latency-anatomy gauges (profile.<phase>.*) when any worker
/// runs with --profile.
void refresh_worker_gauges(LoopState& state) {
  if (state.metrics == nullptr) return;
  const auto now = Clock::now();
  for (const auto& [id, view] : *state.views) {
    const std::string prefix = "fabric.worker." + std::to_string(id) + ".";
    state.metrics->gauge(prefix + "connected")
        .set(view.connected ? 1.0 : 0.0);
    state.metrics->gauge(prefix + "lag_seconds")
        .set(seconds_since(view.last_seen, now));
    state.metrics->gauge(prefix + "lease_age_seconds")
        .set(view.lease != 0 ? seconds_since(view.lease_since, now) : 0.0);
    state.metrics->gauge(prefix + "trials_per_sec")
        .set(view.have_stats ? view.stats.trials_per_sec : 0.0);
    if (view.have_stats && view.stats.profile.trials() > 0) {
      state.metrics->gauge(prefix + "p95_run_ms")
          .set(telemetry::profile_percentile_ms(
              view.stats.profile.phase(telemetry::ProfilePhase::kRun), 95));
    }
  }
  const telemetry::ProfileSnapshot fleet = fold_fleet_profile(state);
  if (fleet.trials() == 0) return;
  for (std::size_t p = 0; p < telemetry::kProfilePhaseCount; ++p) {
    const std::string prefix =
        "profile." +
        std::string(to_string(static_cast<telemetry::ProfilePhase>(p))) +
        ".";
    state.metrics->gauge(prefix + "p50_ms")
        .set(telemetry::profile_percentile_ms(fleet.phases[p], 50));
    state.metrics->gauge(prefix + "p95_ms")
        .set(telemetry::profile_percentile_ms(fleet.phases[p], 95));
    state.metrics->gauge(prefix + "p99_ms")
        .set(telemetry::profile_percentile_ms(fleet.phases[p], 99));
  }
  state.metrics->gauge("profile.trials")
      .set(static_cast<double>(fleet.trials()));
}

/// Renders the /campaign.json document: fleet tallies and intervals, the
/// lease picture, and one row per worker ever seen (dead ones included —
/// that is the point). This is what phifi_top draws.
std::string build_campaign_json(const LoopState& state) {
  using util::json::Value;
  const auto now = Clock::now();
  Value doc = Value::object();
  doc["run_id"] = telemetry::run_id_to_hex(state.run_id);
  doc["fingerprint"] = telemetry::run_id_to_hex(state.fingerprint);
  doc["trials_target"] = state.table->trials();
  doc["prefix_injected"] = state.table->prefix_injected();
  doc["uptime_seconds"] = seconds_since(state.started, now);

  const FleetState& fleet = *state.fleet;
  doc["completed"] = fleet.tally.total();
  doc["masked"] = fleet.tally.masked;
  doc["sdc"] = fleet.tally.sdc;
  doc["due"] = fleet.tally.due;
  doc["not_injected"] = fleet.not_injected;
  doc["fleet_boundary"] = fleet.boundary;
  doc["stopped_early"] = fleet.stopped_early;
  Value kinds = Value::object();
  for (const auto& [kind, count] : fleet.due_kinds) kinds[kind] = count;
  doc["due_kinds"] = std::move(kinds);
  if (state.estimator != nullptr && state.estimator->total() > 0) {
    const util::Interval sdc_ci = state.estimator->sdc_interval();
    const util::Interval due_ci = state.estimator->due_interval();
    doc["sdc_rate"] = sdc_ci.point;
    doc["sdc_ci_lo"] = sdc_ci.lo;
    doc["sdc_ci_hi"] = sdc_ci.hi;
    doc["due_rate"] = due_ci.point;
    doc["due_ci_lo"] = due_ci.lo;
    doc["due_ci_hi"] = due_ci.hi;
    if (state.config->stop_ci_width > 0.0) {
      doc["eta_trials_to_stop"] = state.estimator->trials_to_half_width(
          state.config->stop_ci_width);
    }
  }

  Value leases = Value::object();
  leases["granted"] = state.result->leases_granted;
  leases["reclaimed"] = state.result->leases_reclaimed;
  leases["outstanding"] = state.table->outstanding();
  doc["leases"] = std::move(leases);

  // Fleet latency anatomy: exact fold over the workers' cumulative
  // snapshots (present only when at least one worker profiles).
  const telemetry::ProfileSnapshot profile = fold_fleet_profile(state);
  if (profile.trials() > 0) {
    Value latency = Value::object();
    latency["trials"] = profile.trials();
    Value phases = Value::array();
    for (std::size_t p = 0; p < telemetry::kProfilePhaseCount; ++p) {
      Value row = Value::object();
      row["phase"] = std::string(
          to_string(static_cast<telemetry::ProfilePhase>(p)));
      row["count"] = profile.phases[p].count;
      row["mean_ms"] = profile.phases[p].mean_ms();
      row["p50_ms"] = telemetry::profile_percentile_ms(profile.phases[p], 50);
      row["p95_ms"] = telemetry::profile_percentile_ms(profile.phases[p], 95);
      row["p99_ms"] = telemetry::profile_percentile_ms(profile.phases[p], 99);
      phases.push_back(std::move(row));
    }
    latency["phases"] = std::move(phases);
    doc["latency"] = std::move(latency);
  }

  Value workers = Value::array();
  for (const auto& [id, view] : *state.views) {
    Value row = Value::object();
    row["id"] = id;
    row["status"] = view.connected ? "live" : "dead";
    row["lag_seconds"] = seconds_since(view.last_seen, now);
    if (view.lease != 0) {
      row["lease"] = view.lease;
      row["lease_begin"] = view.lease_begin;
      row["lease_end"] = view.lease_end;
      row["lease_age_seconds"] = seconds_since(view.lease_since, now);
    }
    if (view.have_stats) {
      row["executed"] = view.stats.executed;
      row["leases_done"] = view.stats.leases_done;
      row["masked"] = view.stats.masked;
      row["sdc"] = view.stats.sdc;
      row["due"] = view.stats.due;
      row["not_injected"] = view.stats.not_injected;
      row["trials_per_sec"] = view.stats.trials_per_sec;
      row["uptime_seconds"] = view.stats.uptime_seconds;
      if (view.stats.profile.trials() > 0) {
        row["p95_run_ms"] = telemetry::profile_percentile_ms(
            view.stats.profile.phase(telemetry::ProfilePhase::kRun), 95);
      }
    }
    workers.push_back(std::move(row));
  }
  doc["workers"] = std::move(workers);
  return doc.dump();
}

/// Grants the next available range to `conn` (ledger first, then wire).
/// Returns false when nothing is grantable right now.
bool try_grant(LoopState& state, WorkerConn& conn) {
  std::optional<Lease> lease =
      state.table->grant(conn.worker, lease_deadline(state));
  if (!lease.has_value()) return false;
  // Durability before announcement: a coordinator killed between these
  // two lines restarts with the range orphaned, and either the worker
  // re-claims it via HELLO (if the grant did reach the wire) or the
  // deadline reclaims it. Killed before the append, the grant simply
  // never happened.
  ledger_append(state, LedgerKind::kGrant, *lease);  // phicheck:durable-before(grant)
  Message grant;
  grant.type = MsgType::kLeaseGrant;
  grant.worker = conn.worker;
  grant.lease = lease->id;
  grant.begin = lease->begin;
  grant.end = lease->end;
  conn.link->send(grant);  // phicheck:wire-after(grant)
  conn.hungry = false;
  reset_lease_counts(conn);
  ++state.result->leases_granted;
  if (state.metrics != nullptr) {
    state.metrics->counter("fabric.leases_granted").inc();
  }
  WorkerView& view = (*state.views)[conn.worker];
  view.lease = lease->id;
  view.lease_begin = lease->begin;
  view.lease_end = lease->end;
  view.lease_since = Clock::now();
  trace_fabric(state, "lease_grant", conn.worker, &*lease);
  return true;
}

/// The campaign-completion criterion: the contiguous done prefix covers
/// the trial count, or (with --stop-ci-width) its SDC CI is tight enough.
/// Evaluated at lease granularity; the merge truncates at the exact
/// boundary, so a lease-level overshoot here is harmless.
bool campaign_done(const LoopState& state, bool* stopped_early) {
  const std::uint64_t injected = state.table->prefix_injected();
  if (injected >= state.table->trials()) return true;
  if (state.config->stop_ci_width > 0.0 && injected > 0 &&
      util::wilson_interval(state.table->prefix_sdc(), injected)
              .half_width() <= state.config->stop_ci_width) {
    *stopped_early = true;
    return true;
  }
  return false;
}

void handle_hello(LoopState& state, WorkerConn& conn, const Message& msg) {
  if (msg.fingerprint != state.fingerprint) {
    Message reject;
    reject.type = MsgType::kReject;
    reject.text = "campaign fingerprint mismatch: worker has " +
                  std::to_string(msg.fingerprint) + ", coordinator expects " +
                  std::to_string(state.fingerprint) +
                  " (different config/workload/seed?)";
    conn.link->send(reject);
    conn.link->close();
    return;
  }
  // A reconnecting worker keeps its id unless another live connection
  // already holds it (then it gets a fresh one — ids only matter for
  // lease ownership bookkeeping, not for determinism).
  std::uint64_t id = msg.worker;
  if (id != 0) {
    for (const auto& other : *state.conns) {
      if (other.get() != &conn && other->worker == id &&
          other->link->alive()) {
        id = 0;
        break;
      }
    }
  }
  if (id == 0) {
    id = state.next_worker_id++;
    ++state.result->workers_seen;
  }
  conn.worker = id;
  WorkerView& view = (*state.views)[id];
  const auto now = Clock::now();
  if (!view.connected && view.joined == Clock::time_point{}) {
    view.joined = now;
  }
  view.connected = true;
  view.last_seen = now;
  trace_fabric(state, "worker_join", id, nullptr);
  util::log_debug() << "fabric: coordinator welcomed worker " << id
                    << (msg.lease != 0
                            ? " (claims lease " + std::to_string(msg.lease) +
                                  ")"
                            : std::string());

  Message welcome;
  welcome.type = MsgType::kWelcome;
  welcome.worker = id;
  welcome.run = state.run_id;
  conn.link->send(welcome);

  // A HELLO can carry a lease claim: the worker was executing it when the
  // link (or the coordinator) died. Re-adopt if it is still outstanding;
  // otherwise tell the worker to drop it (it was reclaimed meanwhile).
  if (msg.lease != 0) {
    if (state.table->adopt(msg.lease, id, lease_deadline(state))) {
      Message grant;
      grant.type = MsgType::kLeaseGrant;
      grant.worker = id;
      grant.lease = msg.lease;
      grant.begin = msg.begin;
      grant.end = msg.end;
      conn.link->send(grant);
      reset_lease_counts(conn);
      view.lease = msg.lease;
      view.lease_begin = msg.begin;
      view.lease_end = msg.end;
      view.lease_since = now;
      Lease lease{msg.lease, msg.begin, msg.end, id, {}};
      trace_fabric(state, "lease_adopt", id, &lease);
    } else {
      Message revoke;
      revoke.type = MsgType::kLeaseRevoke;
      revoke.worker = id;
      revoke.lease = msg.lease;
      conn.link->send(revoke);
    }
  }
}

void handle_message(LoopState& state, WorkerConn& conn, const Message& msg) {
  if (conn.worker != 0) {
    const auto it = state.views->find(conn.worker);
    if (it != state.views->end()) it->second.last_seen = Clock::now();
  }
  switch (msg.type) {
    case MsgType::kHello:
      handle_hello(state, conn, msg);
      break;
    case MsgType::kLeaseRequest: {
      bool stopped_early = false;
      if (campaign_done(state, &stopped_early)) {
        Message shutdown;
        shutdown.type = MsgType::kShutdown;
        conn.link->send(shutdown);
        break;
      }
      if (!try_grant(state, conn)) {
        if (state.table->outstanding() > 0) {
          // Nothing grantable now, but outstanding leases may yet be
          // reclaimed — hold the request and serve it then.
          conn.hungry = true;
        } else {
          // Fresh space exhausted, nothing outstanding, campaign not
          // complete: the retry budget ran out. Send the worker home.
          Message shutdown;
          shutdown.type = MsgType::kShutdown;
          conn.link->send(shutdown);
        }
      }
      break;
    }
    case MsgType::kHeartbeat:
      // A stale heartbeat (lease already reclaimed) is ignored: the
      // worker learns via the revoke already sent, or at reconnect.
      if (state.table->heartbeat(msg.lease, lease_deadline(state))) {
        feed_aggregate(state, conn, msg);
      }
      break;
    case MsgType::kStats:
      // Observability only — a torn or hostile payload costs nothing but
      // a log line; the exact tally never depends on STATS.
      if (conn.worker != 0) {
        try {
          WorkerView& view = (*state.views)[conn.worker];
          view.stats = decode_stats(msg.text);
          view.have_stats = true;
        } catch (const std::runtime_error& error) {
          util::log_warn() << "fabric: dropping malformed stats from worker "
                           << conn.worker << ": " << error.what();
        }
      }
      break;
    case MsgType::kLeaseDone: {
      Lease lease{msg.lease, msg.begin, msg.end, conn.worker, {}};
      if (state.table->complete(msg.lease, msg.injected, msg.sdc)) {
        // The detail rides into the ledger so a restarted coordinator
        // rebuilds the exact fleet tally from replay alone.
        ledger_append(state, LedgerKind::kDone, lease, msg.injected,
                      msg.sdc, msg.text);
        feed_aggregate(state, conn, msg);
        register_detail(state, msg.begin, msg.end, msg.text);
        advance_fleet(state);
        if (conn.worker != 0) {
          WorkerView& view = (*state.views)[conn.worker];
          if (view.lease == msg.lease) view.lease = 0;
        }
        trace_fabric(state, "lease_done", conn.worker, &lease, msg.injected);
        util::log_debug() << "fabric: lease " << msg.lease << " done by "
                          << conn.worker << ", prefix "
                          << state.table->prefix_injected() << "/"
                          << state.table->trials();
      }
      // Stale done (range reclaimed and re-executed elsewhere): drop it;
      // the merge dedups any overlap in the shards.
      break;
    }
    case MsgType::kGoodbye:
      trace_fabric(state, "worker_leave", conn.worker, nullptr);
      if (conn.worker != 0) {
        const auto it = state.views->find(conn.worker);
        if (it != state.views->end()) it->second.connected = false;
      }
      conn.link->close();
      break;
    case MsgType::kWelcome:
    case MsgType::kReject:
    case MsgType::kLeaseGrant:
    case MsgType::kLeaseRevoke:
    case MsgType::kShutdown:
    default:  // default stays for out-of-range bytes decoded off the wire
      util::log_warn() << "fabric: coordinator ignoring unexpected "
                       << to_string(msg.type) << " from worker "
                       << conn.worker;
      break;
  }
}

/// Deadline sweep: reclaim expired leases, revoke them on any live link,
/// and feed reclaimed ranges to hungry workers.
void sweep_expired(LoopState& state) {
  const std::vector<Lease> expired = state.table->expire(Clock::now());
  for (const Lease& lease : expired) {
    ledger_append(state, LedgerKind::kReclaim, lease);
    ++state.result->leases_reclaimed;
    if (state.metrics != nullptr) {
      state.metrics->counter("fabric.leases_reclaimed").inc();
    }
    const auto it = state.views->find(lease.worker);
    if (it != state.views->end() && it->second.lease == lease.id) {
      it->second.lease = 0;
    }
    trace_fabric(state, "lease_reclaim", lease.worker, &lease);
    util::log_warn() << "fabric: lease " << lease.id << " ["
                     << lease.begin << ", " << lease.end
                     << ") reclaimed from worker " << lease.worker
                     << " (heartbeat deadline missed)";
    for (auto& conn : *state.conns) {
      if (conn->worker == lease.worker && conn->link->alive()) {
        Message revoke;
        revoke.type = MsgType::kLeaseRevoke;
        revoke.worker = conn->worker;
        revoke.lease = lease.id;
        conn->link->send(revoke);
      }
    }
  }
  if (!expired.empty()) {
    for (auto& conn : *state.conns) {
      if (conn->hungry && conn->link->alive() && conn->worker != 0) {
        try_grant(state, *conn);
      }
    }
  }
}

}  // namespace

// phicheck:poll-loop — single-threaded event loop; anything blocking here
// stalls heartbeats, grants, and the scrape endpoint for the whole fleet.
CoordinatorResult run_coordinator(const fi::CampaignConfig& campaign,
                                  std::uint64_t fingerprint,
                                  const FabricOptions& options,
                                  telemetry::MetricsRegistry* metrics,
                                  telemetry::TraceWriter* trace,
                                  telemetry::CampaignEstimator* estimator,
                                  telemetry::ProgressEmitter* progress,
                                  std::ostream& out) {
  const std::uint64_t budget = static_cast<std::uint64_t>(
      campaign.trials * (1 + campaign.max_retry_factor));
  LeaseTable table(campaign.trials, budget, options.lease_size);

  CoordinatorResult result;
  std::vector<std::unique_ptr<WorkerConn>> conns;
  std::map<std::uint64_t, WorkerView> views;
  FleetState fleet;
  LoopState state;
  state.config = &campaign;
  state.fingerprint = fingerprint;
  state.options = &options;
  state.table = &table;
  state.metrics = metrics;
  state.trace = trace;
  state.estimator = estimator;
  state.result = &result;
  state.conns = &conns;
  state.views = &views;
  state.fleet = &fleet;
  state.started = Clock::now();

  // Run-id resolution: an explicit option wins, a resumed ledger's header
  // keeps its original id (the continued campaign IS the same run), and
  // a fresh campaign draws one.
  std::uint64_t run_id = options.run_id;

  // Ledger resume: replay an existing ledger so outstanding leases are
  // re-adoptable by their reconnecting workers (or expire and re-lease),
  // and so DONE details rebuild the exact fleet tally.
  std::unique_ptr<LeaseLedgerWriter> ledger;
  if (!options.ledger_path.empty()) {
    if (::access(options.ledger_path.c_str(), F_OK) == 0) {
      // read_ledger throws on an unreadable/headerless file — that is an
      // error here (the file exists but is not a ledger), not a fresh
      // start: silently truncating a mystery file would destroy evidence.
      const LedgerContents contents = read_ledger(options.ledger_path);
      if (contents.fingerprint != fingerprint) {
        throw std::runtime_error(
            "fabric: lease ledger '" + options.ledger_path +
            "' belongs to a different campaign (fingerprint mismatch)");
      }
      if (run_id == 0) run_id = contents.run_id;
      // Restored leases get a full timeout of grace so their workers can
      // reconnect and re-adopt before the deadline sweep re-leases them.
      const auto grace = Clock::now() +
                         std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options.lease_timeout_seconds));
      for (const LedgerRecord& record : contents.records) {
        switch (record.kind) {
          case LedgerKind::kGrant:
            table.restore_grant(record.lease, record.begin, record.end,
                                grace);
            break;
          case LedgerKind::kDone:
            table.restore_done(record.lease, record.injected, record.sdc);
            register_detail(state, record.begin, record.end, record.detail);
            break;
          case LedgerKind::kReclaim:
            table.restore_reclaim(record.lease);
            break;
        }
      }
      ledger = std::make_unique<LeaseLedgerWriter>(options.ledger_path,
                                                   contents.valid_bytes);
      out << "[fabric] coordinator resumed ledger '" << options.ledger_path
          << "': " << contents.records.size() << " records, "
          << table.outstanding() << " leases outstanding";
      if (contents.dropped_bytes > 0) {
        out << " (dropped " << contents.dropped_bytes << " torn bytes)";
      }
      out << "\n";
    } else {
      if (run_id == 0) run_id = telemetry::generate_run_id();
      ledger = std::make_unique<LeaseLedgerWriter>(
          options.ledger_path, fingerprint, campaign.trials, run_id);
    }
  }
  if (run_id == 0) run_id = telemetry::generate_run_id();
  state.run_id = run_id;
  result.run_id = run_id;
  state.ledger = ledger.get();
  if (trace != nullptr) {
    trace->set_run_id(telemetry::run_id_to_hex(run_id));
  }
  // Replayed DONE details fold immediately, so the fleet tally (and the
  // estimator, if any) is exact from the first poll iteration on.
  advance_fleet(state);

  const Address address = parse_address(options.address);
  const int listen_fd = listen_on(address);
  out << "[fabric] coordinator listening on " << options.address << " ("
      << campaign.trials << " trials, lease size " << options.lease_size
      << ", run " << telemetry::run_id_to_hex(run_id) << ")\n";

  // The scrape endpoint is serviced from the same poll loop as the worker
  // links — no extra thread, no locking (docs/FLEET_OBSERVABILITY.md).
  std::unique_ptr<ScrapeServer> scrape;
  if (!options.serve_metrics.empty()) {
    scrape = std::make_unique<ScrapeServer>(options.serve_metrics);
    scrape->set_metrics_handler([&state]() {
      refresh_worker_gauges(state);
      return state.metrics != nullptr ? state.metrics->render_openmetrics()
                                      : std::string("# EOF\n");
    });
    scrape->set_campaign_handler(
        [&state]() { return build_campaign_json(state); });
    out << "[fabric] scrape endpoint on " << options.serve_metrics
        << " (port " << scrape->port() << ")\n";
  }

  if (metrics != nullptr) {
    metrics->gauge("campaign.trials_target")
        .set(static_cast<double>(campaign.trials));
  }

  while (true) {
    if (campaign.stop_flag != nullptr &&
        campaign.stop_flag->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }
    bool stopped_early = false;
    if (campaign_done(state, &stopped_early)) {
      result.complete = true;
      result.stopped_early = stopped_early;
      break;
    }

    sweep_expired(state);

    // Drop closed connections (keep the vector small; worker state that
    // matters — the leases — lives in the table, keyed by worker id).
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [&state](const auto& conn) {
                                 if (conn->link->alive()) return false;
                                 if (conn->worker != 0) {
                                   trace_fabric(state, "worker_leave",
                                                conn->worker, nullptr);
                                   const auto it = state.views->find(
                                       conn->worker);
                                   if (it != state.views->end()) {
                                     it->second.connected = false;
                                   }
                                 }
                                 return true;
                               }),
                conns.end());

    std::uint64_t live = 0;
    for (const auto& conn : conns) {
      if (conn->worker != 0) ++live;
    }
    if (metrics != nullptr) {
      metrics->gauge("fabric.workers_live").set(static_cast<double>(live));
      metrics->gauge("fabric.leases_outstanding")
          .set(static_cast<double>(table.outstanding()));
      refresh_worker_gauges(state);
    }
    if (progress != nullptr) progress->tick();

    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    for (const auto& conn : conns) {
      fds.push_back({conn->link->fd(), POLLIN, 0});
    }
    const std::size_t scrape_base = fds.size();
    if (scrape != nullptr) scrape->collect_fds(fds);
    const int n = util::io::poll_retry(fds.data(), fds.size(), 100);
    if (n < 0) {
      throw std::runtime_error("fabric: coordinator poll failed");
    }
    // Service scrape clients every pass: accepts, reads, and nonblocking
    // writes are all cheap no-ops when nothing is pending.
    if (scrape != nullptr) scrape->service();
    (void)scrape_base;
    if (n <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      while (true) {
        const int fd = accept_on(listen_fd);
        if (fd < 0) break;
        auto conn = std::make_unique<WorkerConn>();
        conn->link = std::make_unique<Connection>(fd);
        conns.push_back(std::move(conn));
      }
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      // fds[1 + i] only covers connections that existed before poll();
      // newly accepted ones are pumped next iteration.
      if (1 + i >= scrape_base) break;
      if ((fds[1 + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      WorkerConn& conn = *conns[i];
      conn.link->pump();  // EOF just marks the link dead; leases keep
                          // their deadline (quick reconnects re-adopt)
      Message msg;
      try {
        // Pop past EOF too: a worker's parting frames (kGoodbye, a final
        // kLeaseDone) are buffered even though pump() closed the link.
        while (conn.link->next(&msg)) {
          handle_message(state, conn, msg);
        }
      } catch (const std::runtime_error& error) {
        util::log_warn() << "fabric: dropping worker " << conn.worker
                         << " connection: " << error.what();
        conn.link->close();
      }
    }
  }

  // Wind-down: tell everyone still connected to go home — then WAIT for
  // each worker to hang up (kGoodbye or EOF) instead of closing right
  // away. Closing with a worker's frame still unread in our receive queue
  // resets the stream and the kernel discards the queued kShutdown; the
  // worker would see a bare disconnect and reconnect forever against an
  // address that no longer exists. The grace loop keeps handling inbound
  // frames (a crossed kLeaseDone still reaches the ledger; a crossed
  // kLeaseRequest gets the kShutdown retransmitted by handle_message).
  ::close(listen_fd);
  if (address.is_unix) ::unlink(address.path.c_str());
  Message shutdown;
  shutdown.type = MsgType::kShutdown;
  for (auto& conn : conns) {
    if (conn->link->alive()) {
      util::log_debug() << "fabric: coordinator sending shutdown to worker "
                        << conn->worker;
      conn->link->send(shutdown);
    }
  }
  const auto grace_end = Clock::now() + std::chrono::seconds(2);
  while (Clock::now() < grace_end) {
    std::vector<pollfd> fds;
    for (const auto& conn : conns) {
      if (conn->link->alive()) {
        fds.push_back({conn->link->fd(), POLLIN, 0});
      }
    }
    if (scrape != nullptr) scrape->collect_fds(fds);
    if (fds.empty()) break;  // every worker has hung up
    util::io::poll_retry(fds.data(), fds.size(), 50);
    if (scrape != nullptr) scrape->service();
    for (auto& conn : conns) {
      if (!conn->link->alive()) continue;
      conn->link->pump();
      Message msg;
      try {
        while (conn->link->next(&msg)) handle_message(state, *conn, msg);
      } catch (const std::runtime_error&) {
        conn->link->close();
      }
    }
  }
  for (auto& conn : conns) {
    if (conn->link->alive()) {
      util::log_warn() << "fabric: worker " << conn->worker
                       << " did not hang up within the shutdown grace "
                          "period; closing anyway";
      conn->link->close();
    }
  }

  result.completed = table.prefix_injected();
  result.fleet_completed = fleet.tally.total();
  result.fleet_masked = fleet.tally.masked;
  result.fleet_sdc = fleet.tally.sdc;
  result.fleet_due = fleet.tally.due;
  result.fleet_not_injected = fleet.not_injected;
  result.fleet_due_kinds = fleet.due_kinds;
  result.fleet_boundary = fleet.boundary;
  result.fleet_stopped_early = fleet.stopped_early;
  if (metrics != nullptr) {
    metrics->gauge("fabric.workers_live").set(0.0);
    metrics->gauge("fabric.leases_outstanding")
        .set(static_cast<double>(table.outstanding()));
    refresh_worker_gauges(state);
    if (estimator != nullptr) estimator->publish(*metrics);
  }
  if (progress != nullptr) progress->emit_now();
  if (trace != nullptr) {
    telemetry::TraceEnd end;
    end.completed = fleet.tally.total();
    end.masked = fleet.tally.masked;
    end.sdc = fleet.tally.sdc;
    end.due = fleet.tally.due;
    end.not_injected = fleet.not_injected;
    end.interrupted = result.interrupted;
    end.stopped_early = result.stopped_early || fleet.stopped_early;
    end.elapsed_ms = trace->now_ms();
    end.due_kinds = fleet.due_kinds;
    trace->end(end);
  }
  out << "[fabric] coordinator done: "
      << (result.complete
              ? (result.stopped_early ? "stopped early (CI target)"
                                      : "complete")
              : (result.interrupted ? "interrupted" : "incomplete"))
      << ", " << result.completed << " injected in prefix, "
      << result.leases_granted << " leases granted, "
      << result.leases_reclaimed << " reclaimed\n";
  return result;
}

}  // namespace phifi::fabric

#include "fabric/coordinator.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/lease.hpp"
#include "fabric/protocol.hpp"
#include "util/log.hpp"
#include "util/statistics.hpp"

namespace phifi::fabric {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-connection coordinator state. worker == 0 until the HELLO arrives.
struct WorkerConn {
  std::unique_ptr<Connection> link;
  std::uint64_t worker = 0;
  /// Asked for a lease while none was grantable; served on next reclaim.
  bool hungry = false;
  // Last cumulative per-lease counts reported (heartbeat/done), so the
  // aggregate campaign counters advance by deltas, never double-counting.
  std::uint64_t last_injected = 0;
  std::uint64_t last_masked = 0;
  std::uint64_t last_sdc = 0;
  std::uint64_t last_due = 0;
};

struct LoopState {
  const fi::CampaignConfig* config = nullptr;
  std::uint64_t fingerprint = 0;
  const FabricOptions* options = nullptr;
  LeaseTable* table = nullptr;
  LeaseLedgerWriter* ledger = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TraceWriter* trace = nullptr;
  CoordinatorResult* result = nullptr;
  std::vector<std::unique_ptr<WorkerConn>>* conns = nullptr;
  std::uint64_t next_worker_id = 1;
};

double trace_now_ms(const LoopState& state) {
  return state.trace != nullptr ? state.trace->now_ms() : 0.0;
}

void trace_fabric(const LoopState& state, const std::string& kind,
                  std::uint64_t worker, const Lease* lease,
                  std::uint64_t injected = 0) {
  if (state.trace == nullptr) return;
  telemetry::TraceFabricEvent event;
  event.kind = kind;
  event.worker = worker;
  if (lease != nullptr) {
    event.lease = lease->id;
    event.begin = lease->begin;
    event.end = lease->end;
  }
  event.injected = injected;
  event.ts_ms = trace_now_ms(state);
  state.trace->fabric(event);
}

/// Folds a worker's cumulative per-lease counts into the campaign-wide
/// counters by delta, updating the connection's high-water marks.
void feed_aggregate(LoopState& state, WorkerConn& conn, const Message& msg) {
  if (state.metrics == nullptr) return;
  const auto delta = [](std::uint64_t now, std::uint64_t& last) {
    const std::uint64_t d = now > last ? now - last : 0;
    last = std::max(last, now);
    return d;
  };
  state.metrics->counter("campaign.completed")
      .inc(delta(msg.injected, conn.last_injected));
  state.metrics->counter("campaign.masked")
      .inc(delta(msg.masked, conn.last_masked));
  state.metrics->counter("campaign.sdc").inc(delta(msg.sdc, conn.last_sdc));
  state.metrics->counter("campaign.due").inc(delta(msg.due, conn.last_due));
}

void reset_lease_counts(WorkerConn& conn) {
  conn.last_injected = 0;
  conn.last_masked = 0;
  conn.last_sdc = 0;
  conn.last_due = 0;
}

Clock::time_point lease_deadline(const LoopState& state) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                state.options->lease_timeout_seconds));
}

void ledger_append(LoopState& state, LedgerKind kind, const Lease& lease,
                   std::uint64_t injected = 0, std::uint64_t sdc = 0) {
  if (state.ledger == nullptr) return;
  LedgerRecord record;
  record.kind = kind;
  record.lease = lease.id;
  record.begin = lease.begin;
  record.end = lease.end;
  record.injected = injected;
  record.sdc = sdc;
  state.ledger->append(record);
}

/// Grants the next available range to `conn` (ledger first, then wire).
/// Returns false when nothing is grantable right now.
bool try_grant(LoopState& state, WorkerConn& conn) {
  std::optional<Lease> lease =
      state.table->grant(conn.worker, lease_deadline(state));
  if (!lease.has_value()) return false;
  // Durability before announcement: a coordinator killed between these
  // two lines restarts with the range orphaned, and either the worker
  // re-claims it via HELLO (if the grant did reach the wire) or the
  // deadline reclaims it. Killed before the append, the grant simply
  // never happened.
  ledger_append(state, LedgerKind::kGrant, *lease);
  Message grant;
  grant.type = MsgType::kLeaseGrant;
  grant.worker = conn.worker;
  grant.lease = lease->id;
  grant.begin = lease->begin;
  grant.end = lease->end;
  conn.link->send(grant);
  conn.hungry = false;
  reset_lease_counts(conn);
  ++state.result->leases_granted;
  if (state.metrics != nullptr) {
    state.metrics->counter("fabric.leases_granted").inc();
  }
  trace_fabric(state, "lease_grant", conn.worker, &*lease);
  return true;
}

/// The campaign-completion criterion: the contiguous done prefix covers
/// the trial count, or (with --stop-ci-width) its SDC CI is tight enough.
/// Evaluated at lease granularity; the merge truncates at the exact
/// boundary, so a lease-level overshoot here is harmless.
bool campaign_done(const LoopState& state, bool* stopped_early) {
  const std::uint64_t injected = state.table->prefix_injected();
  if (injected >= state.table->trials()) return true;
  if (state.config->stop_ci_width > 0.0 && injected > 0 &&
      util::wilson_interval(state.table->prefix_sdc(), injected)
              .half_width() <= state.config->stop_ci_width) {
    *stopped_early = true;
    return true;
  }
  return false;
}

void handle_hello(LoopState& state, WorkerConn& conn, const Message& msg) {
  if (msg.fingerprint != state.fingerprint) {
    Message reject;
    reject.type = MsgType::kReject;
    reject.text = "campaign fingerprint mismatch: worker has " +
                  std::to_string(msg.fingerprint) + ", coordinator expects " +
                  std::to_string(state.fingerprint) +
                  " (different config/workload/seed?)";
    conn.link->send(reject);
    conn.link->close();
    return;
  }
  // A reconnecting worker keeps its id unless another live connection
  // already holds it (then it gets a fresh one — ids only matter for
  // lease ownership bookkeeping, not for determinism).
  std::uint64_t id = msg.worker;
  if (id != 0) {
    for (const auto& other : *state.conns) {
      if (other.get() != &conn && other->worker == id &&
          other->link->alive()) {
        id = 0;
        break;
      }
    }
  }
  if (id == 0) {
    id = state.next_worker_id++;
    ++state.result->workers_seen;
  }
  conn.worker = id;
  trace_fabric(state, "worker_join", id, nullptr);
  util::log_debug() << "fabric: coordinator welcomed worker " << id
                    << (msg.lease != 0
                            ? " (claims lease " + std::to_string(msg.lease) +
                                  ")"
                            : std::string());

  Message welcome;
  welcome.type = MsgType::kWelcome;
  welcome.worker = id;
  conn.link->send(welcome);

  // A HELLO can carry a lease claim: the worker was executing it when the
  // link (or the coordinator) died. Re-adopt if it is still outstanding;
  // otherwise tell the worker to drop it (it was reclaimed meanwhile).
  if (msg.lease != 0) {
    if (state.table->adopt(msg.lease, id, lease_deadline(state))) {
      Message grant;
      grant.type = MsgType::kLeaseGrant;
      grant.worker = id;
      grant.lease = msg.lease;
      grant.begin = msg.begin;
      grant.end = msg.end;
      conn.link->send(grant);
      reset_lease_counts(conn);
      Lease lease{msg.lease, msg.begin, msg.end, id, {}};
      trace_fabric(state, "lease_adopt", id, &lease);
    } else {
      Message revoke;
      revoke.type = MsgType::kLeaseRevoke;
      revoke.worker = id;
      revoke.lease = msg.lease;
      conn.link->send(revoke);
    }
  }
}

void handle_message(LoopState& state, WorkerConn& conn, const Message& msg) {
  switch (msg.type) {
    case MsgType::kHello:
      handle_hello(state, conn, msg);
      break;
    case MsgType::kLeaseRequest: {
      bool stopped_early = false;
      if (campaign_done(state, &stopped_early)) {
        Message shutdown;
        shutdown.type = MsgType::kShutdown;
        conn.link->send(shutdown);
        break;
      }
      if (!try_grant(state, conn)) {
        if (state.table->outstanding() > 0) {
          // Nothing grantable now, but outstanding leases may yet be
          // reclaimed — hold the request and serve it then.
          conn.hungry = true;
        } else {
          // Fresh space exhausted, nothing outstanding, campaign not
          // complete: the retry budget ran out. Send the worker home.
          Message shutdown;
          shutdown.type = MsgType::kShutdown;
          conn.link->send(shutdown);
        }
      }
      break;
    }
    case MsgType::kHeartbeat:
      // A stale heartbeat (lease already reclaimed) is ignored: the
      // worker learns via the revoke already sent, or at reconnect.
      if (state.table->heartbeat(msg.lease, lease_deadline(state))) {
        feed_aggregate(state, conn, msg);
      }
      break;
    case MsgType::kLeaseDone: {
      Lease lease{msg.lease, msg.begin, msg.end, conn.worker, {}};
      if (state.table->complete(msg.lease, msg.injected, msg.sdc)) {
        ledger_append(state, LedgerKind::kDone, lease, msg.injected,
                      msg.sdc);
        feed_aggregate(state, conn, msg);
        trace_fabric(state, "lease_done", conn.worker, &lease, msg.injected);
        util::log_debug() << "fabric: lease " << msg.lease << " done by "
                          << conn.worker << ", prefix "
                          << state.table->prefix_injected() << "/"
                          << state.table->trials();
      }
      // Stale done (range reclaimed and re-executed elsewhere): drop it;
      // the merge dedups any overlap in the shards.
      break;
    }
    case MsgType::kGoodbye:
      trace_fabric(state, "worker_leave", conn.worker, nullptr);
      conn.link->close();
      break;
    default:
      util::log_warn() << "fabric: coordinator ignoring unexpected "
                       << to_string(msg.type) << " from worker "
                       << conn.worker;
      break;
  }
}

/// Deadline sweep: reclaim expired leases, revoke them on any live link,
/// and feed reclaimed ranges to hungry workers.
void sweep_expired(LoopState& state) {
  const std::vector<Lease> expired = state.table->expire(Clock::now());
  for (const Lease& lease : expired) {
    ledger_append(state, LedgerKind::kReclaim, lease);
    ++state.result->leases_reclaimed;
    if (state.metrics != nullptr) {
      state.metrics->counter("fabric.leases_reclaimed").inc();
    }
    trace_fabric(state, "lease_reclaim", lease.worker, &lease);
    util::log_warn() << "fabric: lease " << lease.id << " ["
                     << lease.begin << ", " << lease.end
                     << ") reclaimed from worker " << lease.worker
                     << " (heartbeat deadline missed)";
    for (auto& conn : *state.conns) {
      if (conn->worker == lease.worker && conn->link->alive()) {
        Message revoke;
        revoke.type = MsgType::kLeaseRevoke;
        revoke.worker = conn->worker;
        revoke.lease = lease.id;
        conn->link->send(revoke);
      }
    }
  }
  if (!expired.empty()) {
    for (auto& conn : *state.conns) {
      if (conn->hungry && conn->link->alive() && conn->worker != 0) {
        try_grant(state, *conn);
      }
    }
  }
}

}  // namespace

CoordinatorResult run_coordinator(const fi::CampaignConfig& campaign,
                                  std::uint64_t fingerprint,
                                  const FabricOptions& options,
                                  telemetry::MetricsRegistry* metrics,
                                  telemetry::TraceWriter* trace,
                                  telemetry::ProgressEmitter* progress,
                                  std::ostream& out) {
  const std::uint64_t budget = static_cast<std::uint64_t>(
      campaign.trials * (1 + campaign.max_retry_factor));
  LeaseTable table(campaign.trials, budget, options.lease_size);

  // Ledger resume: replay an existing ledger so outstanding leases are
  // re-adoptable by their reconnecting workers (or expire and re-lease).
  std::unique_ptr<LeaseLedgerWriter> ledger;
  if (!options.ledger_path.empty()) {
    if (::access(options.ledger_path.c_str(), F_OK) == 0) {
      // read_ledger throws on an unreadable/headerless file — that is an
      // error here (the file exists but is not a ledger), not a fresh
      // start: silently truncating a mystery file would destroy evidence.
      const LedgerContents contents = read_ledger(options.ledger_path);
      if (contents.fingerprint != fingerprint) {
        throw std::runtime_error(
            "fabric: lease ledger '" + options.ledger_path +
            "' belongs to a different campaign (fingerprint mismatch)");
      }
      // Restored leases get a full timeout of grace so their workers can
      // reconnect and re-adopt before the deadline sweep re-leases them.
      const auto grace = Clock::now() +
                         std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options.lease_timeout_seconds));
      for (const LedgerRecord& record : contents.records) {
        switch (record.kind) {
          case LedgerKind::kGrant:
            table.restore_grant(record.lease, record.begin, record.end,
                                grace);
            break;
          case LedgerKind::kDone:
            table.restore_done(record.lease, record.injected, record.sdc);
            break;
          case LedgerKind::kReclaim:
            table.restore_reclaim(record.lease);
            break;
        }
      }
      ledger = std::make_unique<LeaseLedgerWriter>(options.ledger_path,
                                                   contents.valid_bytes);
      out << "[fabric] coordinator resumed ledger '" << options.ledger_path
          << "': " << contents.records.size() << " records, "
          << table.outstanding() << " leases outstanding";
      if (contents.dropped_bytes > 0) {
        out << " (dropped " << contents.dropped_bytes << " torn bytes)";
      }
      out << "\n";
    } else {
      ledger = std::make_unique<LeaseLedgerWriter>(
          options.ledger_path, fingerprint, campaign.trials);
    }
  }

  CoordinatorResult result;
  std::vector<std::unique_ptr<WorkerConn>> conns;
  LoopState state;
  state.config = &campaign;
  state.fingerprint = fingerprint;
  state.options = &options;
  state.table = &table;
  state.ledger = ledger.get();
  state.metrics = metrics;
  state.trace = trace;
  state.result = &result;
  state.conns = &conns;

  const Address address = parse_address(options.address);
  const int listen_fd = listen_on(address);
  out << "[fabric] coordinator listening on " << options.address << " ("
      << campaign.trials << " trials, lease size " << options.lease_size
      << ")\n";

  if (metrics != nullptr) {
    metrics->gauge("campaign.trials_target")
        .set(static_cast<double>(campaign.trials));
  }

  while (true) {
    if (campaign.stop_flag != nullptr &&
        campaign.stop_flag->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }
    bool stopped_early = false;
    if (campaign_done(state, &stopped_early)) {
      result.complete = true;
      result.stopped_early = stopped_early;
      break;
    }

    sweep_expired(state);

    // Drop closed connections (keep the vector small; worker state that
    // matters — the leases — lives in the table, keyed by worker id).
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [&state](const auto& conn) {
                                 if (conn->link->alive()) return false;
                                 if (conn->worker != 0) {
                                   trace_fabric(state, "worker_leave",
                                                conn->worker, nullptr);
                                 }
                                 return true;
                               }),
                conns.end());

    std::uint64_t live = 0;
    for (const auto& conn : conns) {
      if (conn->worker != 0) ++live;
    }
    if (metrics != nullptr) {
      metrics->gauge("fabric.workers_live").set(static_cast<double>(live));
      metrics->gauge("fabric.leases_outstanding")
          .set(static_cast<double>(table.outstanding()));
    }
    if (progress != nullptr) progress->tick();

    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    for (const auto& conn : conns) {
      fds.push_back({conn->link->fd(), POLLIN, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), 100);
    if (n < 0 && errno != EINTR) {
      throw std::runtime_error("fabric: coordinator poll failed");
    }
    if (n <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      while (true) {
        const int fd = accept_on(listen_fd);
        if (fd < 0) break;
        auto conn = std::make_unique<WorkerConn>();
        conn->link = std::make_unique<Connection>(fd);
        conns.push_back(std::move(conn));
      }
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      // fds[1 + i] only covers connections that existed before poll();
      // newly accepted ones are pumped next iteration.
      if (1 + i >= fds.size()) break;
      if ((fds[1 + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      WorkerConn& conn = *conns[i];
      conn.link->pump();  // EOF just marks the link dead; leases keep
                          // their deadline (quick reconnects re-adopt)
      Message msg;
      try {
        // Pop past EOF too: a worker's parting frames (kGoodbye, a final
        // kLeaseDone) are buffered even though pump() closed the link.
        while (conn.link->next(&msg)) {
          handle_message(state, conn, msg);
        }
      } catch (const std::runtime_error& error) {
        util::log_warn() << "fabric: dropping worker " << conn.worker
                         << " connection: " << error.what();
        conn.link->close();
      }
    }
  }

  // Wind-down: tell everyone still connected to go home — then WAIT for
  // each worker to hang up (kGoodbye or EOF) instead of closing right
  // away. Closing with a worker's frame still unread in our receive queue
  // resets the stream and the kernel discards the queued kShutdown; the
  // worker would see a bare disconnect and reconnect forever against an
  // address that no longer exists. The grace loop keeps handling inbound
  // frames (a crossed kLeaseDone still reaches the ledger; a crossed
  // kLeaseRequest gets the kShutdown retransmitted by handle_message).
  ::close(listen_fd);
  if (address.is_unix) ::unlink(address.path.c_str());
  Message shutdown;
  shutdown.type = MsgType::kShutdown;
  for (auto& conn : conns) {
    if (conn->link->alive()) {
      util::log_debug() << "fabric: coordinator sending shutdown to worker "
                        << conn->worker;
      conn->link->send(shutdown);
    }
  }
  const auto grace_end = Clock::now() + std::chrono::seconds(2);
  while (Clock::now() < grace_end) {
    std::vector<pollfd> fds;
    for (const auto& conn : conns) {
      if (conn->link->alive()) {
        fds.push_back({conn->link->fd(), POLLIN, 0});
      }
    }
    if (fds.empty()) break;  // every worker has hung up
    ::poll(fds.data(), fds.size(), 50);
    for (auto& conn : conns) {
      if (!conn->link->alive()) continue;
      conn->link->pump();
      Message msg;
      try {
        while (conn->link->next(&msg)) handle_message(state, *conn, msg);
      } catch (const std::runtime_error&) {
        conn->link->close();
      }
    }
  }
  for (auto& conn : conns) {
    if (conn->link->alive()) {
      util::log_warn() << "fabric: worker " << conn->worker
                       << " did not hang up within the shutdown grace "
                          "period; closing anyway";
      conn->link->close();
    }
  }

  result.completed = table.prefix_injected();
  if (metrics != nullptr) {
    metrics->gauge("fabric.workers_live").set(0.0);
    metrics->gauge("fabric.leases_outstanding")
        .set(static_cast<double>(table.outstanding()));
  }
  if (progress != nullptr) progress->emit_now();
  out << "[fabric] coordinator done: "
      << (result.complete
              ? (result.stopped_early ? "stopped early (CI target)"
                                      : "complete")
              : (result.interrupted ? "interrupted" : "incomplete"))
      << ", " << result.completed << " injected in prefix, "
      << result.leases_granted << " leases granted, "
      << result.leases_reclaimed << " reclaimed\n";
  return result;
}

}  // namespace phifi::fabric

// Campaign fabric coordinator: leases attempt-index ranges to workers,
// reclaims them on stall/crash/partition, and survives its own crashes
// via the lease ledger. See docs/FABRIC.md for the protocol and the
// failure matrix.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "core/campaign.hpp"
#include "fabric/options.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/trace.hpp"

namespace phifi::fabric {

struct CoordinatorResult {
  /// The contiguous done prefix reached the trial count (or the
  /// --stop-ci-width boundary at lease granularity).
  bool complete = false;
  bool interrupted = false;   ///< stop_flag fired
  bool stopped_early = false; ///< completion came from the stop rule
  std::uint64_t workers_seen = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_reclaimed = 0;
  /// Injected completions in the contiguous done prefix. May exceed the
  /// trial count (the final lease runs to completion); the merge truncates
  /// at the exact boundary.
  std::uint64_t completed = 0;
};

/// Runs the coordinator event loop until the campaign completes, the work
/// space is exhausted, or `campaign.stop_flag` fires. Single-threaded:
/// one poll() loop owns the listener, every worker connection, lease
/// deadlines, the ledger, and the progress/metrics feeds.
///
/// `fingerprint` is the campaign fingerprint workers must match — derive
/// it with campaign_fingerprint() from a prepared supervisor so the
/// coordinator validates against exactly what a worker computes.
CoordinatorResult run_coordinator(const fi::CampaignConfig& campaign,
                                  std::uint64_t fingerprint,
                                  const FabricOptions& options,
                                  telemetry::MetricsRegistry* metrics,
                                  telemetry::TraceWriter* trace,
                                  telemetry::ProgressEmitter* progress,
                                  std::ostream& out);

}  // namespace phifi::fabric

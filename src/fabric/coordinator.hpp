// Campaign fabric coordinator: leases attempt-index ranges to workers,
// reclaims them on stall/crash/partition, and survives its own crashes
// via the lease ledger. See docs/FABRIC.md for the protocol and the
// failure matrix, and docs/FLEET_OBSERVABILITY.md for the live
// aggregation plane (STATS frames, the scrape endpoint, correlation ids).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "core/campaign.hpp"
#include "fabric/options.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/trace.hpp"

namespace phifi::fabric {

struct CoordinatorResult {
  /// The contiguous done prefix reached the trial count (or the
  /// --stop-ci-width boundary at lease granularity).
  bool complete = false;
  bool interrupted = false;   ///< stop_flag fired
  bool stopped_early = false; ///< completion came from the stop rule
  std::uint64_t workers_seen = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_reclaimed = 0;
  /// Injected completions in the contiguous done prefix. May exceed the
  /// trial count (the final lease runs to completion); the merge truncates
  /// at the exact boundary.
  std::uint64_t completed = 0;
  /// Campaign run id this coordinator served under (resolved from
  /// options.run_id, the resumed ledger, or freshly generated).
  std::uint64_t run_id = 0;
  /// Exact fleet tally, folded from the per-attempt LeaseDone details in
  /// contiguous attempt order with the merge boundary rule — bit-identical
  /// to what phifi_parse reports over the merged shards. All zero when no
  /// worker attached details (a pre-observability worker build).
  std::uint64_t fleet_completed = 0;  ///< injected attempts inside boundary
  std::uint64_t fleet_masked = 0;
  std::uint64_t fleet_sdc = 0;
  std::uint64_t fleet_due = 0;
  std::uint64_t fleet_not_injected = 0;
  std::map<std::string, std::uint64_t> fleet_due_kinds;
  /// The fleet tally reached the exact campaign boundary (trial count or
  /// CI stop) — i.e. fleet_* above are final, not a partial prefix.
  bool fleet_boundary = false;
  bool fleet_stopped_early = false;  ///< that boundary was the CI stop
};

/// Runs the coordinator event loop until the campaign completes, the work
/// space is exhausted, or `campaign.stop_flag` fires. Single-threaded:
/// one poll() loop owns the listener, every worker connection, lease
/// deadlines, the ledger, the scrape endpoint, and the progress/metrics/
/// estimator feeds.
///
/// `fingerprint` is the campaign fingerprint workers must match — derive
/// it with campaign_fingerprint() from a prepared supervisor so the
/// coordinator validates against exactly what a worker computes.
///
/// `estimator` (optional) receives the exact fleet stream: per-attempt
/// outcomes from LeaseDone details, folded in attempt order up to the
/// campaign boundary, so its intervals match a --jobs 1 run bit for bit.
CoordinatorResult run_coordinator(const fi::CampaignConfig& campaign,
                                  std::uint64_t fingerprint,
                                  const FabricOptions& options,
                                  telemetry::MetricsRegistry* metrics,
                                  telemetry::TraceWriter* trace,
                                  telemetry::CampaignEstimator* estimator,
                                  telemetry::ProgressEmitter* progress,
                                  std::ostream& out);

}  // namespace phifi::fabric

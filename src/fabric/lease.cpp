#include "fabric/lease.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "core/campaign_journal.hpp"  // journal_crc32
#include "util/posix_io.hpp"

namespace phifi::fabric {

namespace {

constexpr char kMagic[8] = {'P', 'H', 'I', 'F', 'I', 'L', 'L', '1'};
constexpr std::size_t kRecordPayload = 1 + 5 * 8;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::uint8_t* data) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  return value;
}

void write_all(int fd, const void* data, std::size_t size,
               const char* what) {
  if (!util::io::write_fully(fd, data, size)) {
    throw std::runtime_error(std::string("lease ledger: ") + what + ": " +
                             std::strerror(errno));
  }
}

/// Appends one `u32 size | payload | u32 crc` frame.
void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 8);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, fi::journal_crc32(payload.data(), payload.size()));
  write_all(fd, frame.data(), frame.size(), "write");
}

}  // namespace

// ---- LeaseTable ----

LeaseTable::LeaseTable(std::uint64_t trials, std::uint64_t budget,
                       std::uint64_t lease_size)
    : trials_(trials),
      budget_(budget),
      lease_size_(std::max<std::uint64_t>(1, lease_size)) {}

std::optional<Lease> LeaseTable::grant(std::uint64_t worker,
                                       Clock::time_point deadline) {
  Lease lease;
  if (!pending_.empty()) {
    const auto it = pending_.begin();
    lease.begin = it->first;
    lease.end = it->second;
    pending_.erase(it);
  } else if (next_fresh_ < budget_) {
    lease.begin = next_fresh_;
    lease.end = std::min(budget_, next_fresh_ + lease_size_);
    next_fresh_ = lease.end;
  } else {
    return std::nullopt;
  }
  lease.id = next_id_++;
  lease.worker = worker;
  lease.deadline = deadline;
  active_.emplace(lease.id, lease);
  return lease;
}

bool LeaseTable::adopt(std::uint64_t lease_id, std::uint64_t worker,
                       Clock::time_point deadline) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  it->second.worker = worker;
  it->second.deadline = deadline;
  return true;
}

bool LeaseTable::heartbeat(std::uint64_t lease_id,
                           Clock::time_point deadline) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  it->second.deadline = deadline;
  return true;
}

bool LeaseTable::complete(std::uint64_t lease_id, std::uint64_t injected,
                          std::uint64_t sdc) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  done_[it->second.begin] = {it->second.end, injected, sdc};
  active_.erase(it);
  return true;
}

std::vector<Lease> LeaseTable::expire(Clock::time_point now) {
  std::vector<Lease> expired;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.deadline <= now) {
      expired.push_back(it->second);
      pending_.emplace(it->second.begin, it->second.end);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::vector<Lease> LeaseTable::leases_of(std::uint64_t worker) const {
  std::vector<Lease> leases;
  for (const auto& [id, lease] : active_) {
    if (lease.worker == worker) leases.push_back(lease);
  }
  return leases;
}

std::uint64_t LeaseTable::prefix_injected() const {
  std::uint64_t frontier = 0;
  std::uint64_t injected = 0;
  for (const auto& [begin, range] : done_) {
    if (begin != frontier) break;
    injected += range.injected;
    frontier = range.end;
  }
  return injected;
}

std::uint64_t LeaseTable::prefix_sdc() const {
  std::uint64_t frontier = 0;
  std::uint64_t sdc = 0;
  for (const auto& [begin, range] : done_) {
    if (begin != frontier) break;
    sdc += range.sdc;
    frontier = range.end;
  }
  return sdc;
}

bool LeaseTable::exhausted() const {
  return pending_.empty() && next_fresh_ >= budget_;
}

void LeaseTable::restore_grant(std::uint64_t id, std::uint64_t begin,
                               std::uint64_t end,
                               Clock::time_point deadline) {
  Lease lease;
  lease.id = id;
  lease.begin = begin;
  lease.end = end;
  lease.worker = 0;  // orphaned until its worker reconnects
  lease.deadline = deadline;
  active_.emplace(id, lease);
  next_id_ = std::max(next_id_, id + 1);
  next_fresh_ = std::max(next_fresh_, end);
  // A re-grant of a previously reclaimed range consumes the pending entry.
  pending_.erase(begin);
}

void LeaseTable::restore_done(std::uint64_t id, std::uint64_t injected,
                              std::uint64_t sdc) {
  complete(id, injected, sdc);
}

void LeaseTable::restore_reclaim(std::uint64_t id) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  pending_.emplace(it->second.begin, it->second.end);
  active_.erase(it);
}

// ---- ledger ----

LedgerContents read_ledger(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("lease ledger: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  std::vector<std::uint8_t> data;
  // phicheck:blocking-ok(startup ledger replay, before the poll loop spins; a 1 MiB ledger reads back in single-digit ms)
  if (!util::io::read_to_end(fd, data)) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("lease ledger: read '" + path +
                             "': " + std::strerror(saved));
  }
  ::close(fd);

  LedgerContents contents;
  std::size_t offset = sizeof(kMagic);
  if (data.size() < offset ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("lease ledger: '" + path +
                             "' is not a lease ledger (bad magic)");
  }
  // Header frame.
  const auto try_frame =
      [&](std::vector<std::uint8_t>* payload) -> bool {
    if (data.size() < offset + 8) return false;
    const std::uint32_t size = get_u32(data.data() + offset);
    if (size > (1u << 20) || data.size() < offset + 8 + size) return false;
    const std::uint8_t* body = data.data() + offset + 4;
    if (get_u32(body + size) != fi::journal_crc32(body, size)) return false;
    payload->assign(body, body + size);
    offset += 8 + size;
    return true;
  };
  std::vector<std::uint8_t> payload;
  // 16-byte headers predate the run-id field; tolerate both.
  if (!try_frame(&payload) ||
      (payload.size() != 16 && payload.size() != 24)) {
    throw std::runtime_error("lease ledger: '" + path +
                             "' has a missing or corrupt header");
  }
  contents.fingerprint = get_u64(payload.data());
  contents.trials = get_u64(payload.data() + 8);
  if (payload.size() == 24) {
    contents.run_id = get_u64(payload.data() + 16);
  }
  contents.valid_bytes = offset;

  while (try_frame(&payload)) {
    if (payload.size() < kRecordPayload) break;  // corrupt: drop the tail
    LedgerRecord record;
    record.kind = static_cast<LedgerKind>(payload[0]);
    record.lease = get_u64(payload.data() + 1);
    record.begin = get_u64(payload.data() + 9);
    record.end = get_u64(payload.data() + 17);
    record.injected = get_u64(payload.data() + 25);
    record.sdc = get_u64(payload.data() + 33);
    if (payload.size() > kRecordPayload) {
      // Extended record: u32 detail length + the detail bytes.
      if (payload.size() < kRecordPayload + 4) break;
      const std::uint32_t detail_len =
          get_u32(payload.data() + kRecordPayload);
      if (payload.size() != kRecordPayload + 4 + detail_len) break;
      record.detail.assign(
          reinterpret_cast<const char*>(payload.data() + kRecordPayload + 4),
          detail_len);
    }
    contents.records.push_back(std::move(record));
    contents.valid_bytes = offset;
  }
  contents.dropped_bytes = data.size() - contents.valid_bytes;
  return contents;
}

LeaseLedgerWriter::LeaseLedgerWriter(const std::string& path,
                                     std::uint64_t fingerprint,
                                     std::uint64_t trials,
                                     std::uint64_t run_id) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw std::runtime_error("lease ledger: cannot create '" + path +
                             "': " + std::strerror(errno));
  }
  write_all(fd_, kMagic, sizeof(kMagic), "write magic");
  std::vector<std::uint8_t> payload;
  put_u64(payload, fingerprint);
  put_u64(payload, trials);
  put_u64(payload, run_id);
  write_frame(fd_, payload);
  ::fsync(fd_);
}

LeaseLedgerWriter::LeaseLedgerWriter(const std::string& path,
                                     std::uint64_t valid_bytes) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("lease ledger: cannot reopen '" + path +
                             "': " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("lease ledger: cannot truncate '" + path +
                             "': " + std::strerror(saved));
  }
}

LeaseLedgerWriter::~LeaseLedgerWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void LeaseLedgerWriter::append(const LedgerRecord& record) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kRecordPayload + 4 + record.detail.size());
  payload.push_back(static_cast<std::uint8_t>(record.kind));
  put_u64(payload, record.lease);
  put_u64(payload, record.begin);
  put_u64(payload, record.end);
  put_u64(payload, record.injected);
  put_u64(payload, record.sdc);
  put_u32(payload, static_cast<std::uint32_t>(record.detail.size()));
  payload.insert(payload.end(), record.detail.begin(), record.detail.end());
  write_frame(fd_, payload);
  // phicheck:blocking-ok(the deliberate one: a GRANT/DONE must be on disk before the matching wire frame or a coordinator crash forgets leases it promised (docs/FABRIC.md); bench: one fsync per lease transition, ~0.1-1ms on ext4 SSD, amortized over an entire lease of trials)
  ::fsync(fd_);
}

}  // namespace phifi::fabric

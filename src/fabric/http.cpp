#include "fabric/http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "util/posix_io.hpp"

namespace phifi::fabric {

namespace {

/// A scrape request is one short line plus a few headers; anything bigger
/// is a client that is not speaking scrape-HTTP.
constexpr std::size_t kMaxRequest = 8192;

/// parse_address rejects port 0 (it is never a valid *connect* target),
/// but for a listen spec it means "pick an ephemeral port" — essential
/// for tests. Special-case it here rather than loosening the protocol.
Address parse_serve_spec(const std::string& spec) {
  if (spec.rfind("tcp:", 0) == 0) {
    const auto colon = spec.rfind(':');
    if (colon > 4 && colon != std::string::npos &&
        spec.substr(colon + 1) == "0") {
      Address address;
      address.is_unix = false;
      address.host = spec.substr(4, colon - 4);
      address.port = 0;
      return address;
    }
  }
  return parse_address(spec);
}

std::string status_line(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK";
    case 400: return "HTTP/1.1 400 Bad Request";
    case 404: return "HTTP/1.1 404 Not Found";
    case 405: return "HTTP/1.1 405 Method Not Allowed";
    default: return "HTTP/1.1 500 Internal Server Error";
  }
}

std::string make_response(int code, const std::string& content_type,
                          const std::string& body) {
  std::string out = status_line(code);
  out += "\r\nContent-Type: " + content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

ScrapeServer::ScrapeServer(const std::string& spec) {
  const Address address = parse_serve_spec(spec);
  listen_fd_ = listen_on(address);
  if (address.is_unix) {
    unix_path_ = address.path;
  } else {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
}

ScrapeServer::~ScrapeServer() {
  for (Client& client : clients_) {
    if (client.fd >= 0) ::close(client.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void ScrapeServer::set_metrics_handler(Handler handler) {
  metrics_handler_ = std::move(handler);
}

void ScrapeServer::set_campaign_handler(Handler handler) {
  campaign_handler_ = std::move(handler);
}

void ScrapeServer::collect_fds(std::vector<pollfd>& fds) const {
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const Client& client : clients_) {
    fds.push_back(pollfd{client.fd,
                         static_cast<short>(client.responding ? POLLOUT
                                                              : POLLIN),
                         0});
  }
}

std::string ScrapeServer::handle(const std::string& method,
                                 const std::string& path) const {
  if (method != "GET") {
    return make_response(405, "text/plain; charset=utf-8",
                         "method not allowed\n");
  }
  // Strip any query string: scrape paths take no parameters.
  const std::string route = path.substr(0, path.find('?'));
  if (route == "/metrics") {
    const std::string body =
        metrics_handler_ ? metrics_handler_() : std::string();
    return make_response(
        200, "application/openmetrics-text; version=1.0.0; charset=utf-8",
        body);
  }
  if (route == "/campaign.json") {
    const std::string body =
        campaign_handler_ ? campaign_handler_() : std::string("{}");
    return make_response(200, "application/json; charset=utf-8", body);
  }
  if (route == "/healthz") {
    return make_response(200, "text/plain; charset=utf-8", "ok\n");
  }
  return make_response(404, "text/plain; charset=utf-8", "not found\n");
}

void ScrapeServer::respond(Client& client) {
  // Request line: METHOD SP PATH SP VERSION. Headers are ignored — every
  // route is a parameterless GET.
  const std::size_t line_end = client.inbound.find("\r\n");
  const std::string line = client.inbound.substr(
      0, line_end == std::string::npos ? client.inbound.size() : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    client.outbound =
        make_response(400, "text/plain; charset=utf-8", "bad request\n");
  } else {
    client.outbound = handle(line.substr(0, sp1),
                             line.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  client.responding = true;
}

void ScrapeServer::service() {
  // Accept everything pending; accept_on returns -1 when drained.
  while (true) {
    const int fd = accept_on(listen_fd_);
    if (fd < 0) break;
    Client client;
    client.fd = fd;
    clients_.push_back(std::move(client));
  }

  for (Client& client : clients_) {
    if (!client.responding) {
      while (true) {
        char chunk[2048];
        const ssize_t n = util::io::recv_some(client.fd, chunk, sizeof chunk, 0);
        if (n > 0) {
          client.inbound.append(chunk, static_cast<std::size_t>(n));
          if (client.inbound.size() > kMaxRequest) {
            client.outbound = make_response(400, "text/plain; charset=utf-8",
                                            "request too large\n");
            client.responding = true;
            break;
          }
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // EOF or error before a complete request: drop the client.
        ::close(client.fd);
        client.fd = -1;
        break;
      }
      if (client.fd >= 0 && !client.responding &&
          client.inbound.find("\r\n\r\n") != std::string::npos) {
        respond(client);
      }
    }
    if (client.fd >= 0 && client.responding) {
      while (client.sent < client.outbound.size()) {
        const ssize_t n = util::io::send_some(
            client.fd, client.outbound.data() + client.sent,
            client.outbound.size() - client.sent, MSG_NOSIGNAL);
        if (n > 0) {
          client.sent += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        ::close(client.fd);
        client.fd = -1;
        break;
      }
      if (client.fd >= 0 && client.sent == client.outbound.size()) {
        ::close(client.fd);
        client.fd = -1;
      }
    }
  }
  std::erase_if(clients_, [](const Client& client) { return client.fd < 0; });
}

}  // namespace phifi::fabric

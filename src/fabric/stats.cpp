#include "fabric/stats.hpp"

#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace phifi::fabric {

namespace {

using util::json::Value;

std::uint64_t u64_or(const Value& object, const std::string& key) {
  return static_cast<std::uint64_t>(object.number_or(key, 0.0));
}

// phicheck:ndjson-writer(stats.counts) out
Value counts_to_json(const telemetry::EstimatorCounts& counts) {
  Value out = Value::object();
  out["masked"] = counts.masked;
  out["sdc"] = counts.sdc;
  out["due"] = counts.due;
  return out;
}

telemetry::EstimatorCounts counts_from_json(const Value& object) {
  telemetry::EstimatorCounts counts;
  counts.masked = u64_or(object, "masked");
  counts.sdc = u64_or(object, "sdc");
  counts.due = u64_or(object, "due");
  return counts;
}

}  // namespace

// phicheck:ndjson-writer(stats.attempt) entry
std::string encode_attempts(const std::vector<AttemptOutcome>& attempts) {
  Value array = Value::array();
  for (const AttemptOutcome& attempt : attempts) {
    Value entry = Value::object();
    entry["o"] = attempt.outcome;
    entry["k"] = attempt.due_kind;
    entry["m"] = attempt.model;
    entry["c"] = attempt.category;
    entry["w"] = attempt.window;
    entry["i"] = attempt.injected;
    array.push_back(std::move(entry));
  }
  return array.dump();
}

std::vector<AttemptOutcome> decode_attempts(const std::string& text) {
  if (text.empty()) return {};
  const Value parsed = util::json::parse(text);
  if (!parsed.is_array()) {
    throw std::runtime_error("fabric: attempt detail is not a JSON array");
  }
  std::vector<AttemptOutcome> attempts;
  attempts.reserve(parsed.as_array().size());
  for (const Value& entry : parsed.as_array()) {
    if (!entry.is_object()) {
      throw std::runtime_error("fabric: attempt detail entry is not an object");
    }
    AttemptOutcome attempt;
    attempt.outcome = entry.string_or("o", "");
    attempt.due_kind = entry.string_or("k", "none");
    attempt.model = entry.string_or("m", "");
    attempt.category = entry.string_or("c", "");
    attempt.window = static_cast<unsigned>(entry.number_or("w", 0.0));
    attempt.injected = entry.bool_or("i", false);
    if (attempt.outcome.empty()) {
      throw std::runtime_error("fabric: attempt detail entry lacks outcome");
    }
    attempts.push_back(std::move(attempt));
  }
  return attempts;
}

AttemptOutcome attempt_from_trial(const fi::TrialResult& trial) {
  AttemptOutcome attempt;
  attempt.outcome = std::string(fi::to_string(trial.outcome));
  attempt.due_kind = std::string(fi::to_string(trial.due_kind));
  attempt.model = std::string(fi::to_string(trial.record.model));
  attempt.category = trial.record.category;
  attempt.window = trial.window;
  attempt.injected = trial.record.injected;
  return attempt;
}

fi::Outcome outcome_from_name(const std::string& name) {
  if (name == fi::to_string(fi::Outcome::kMasked)) {
    return fi::Outcome::kMasked;
  }
  if (name == fi::to_string(fi::Outcome::kSdc)) return fi::Outcome::kSdc;
  if (name == fi::to_string(fi::Outcome::kDue)) return fi::Outcome::kDue;
  if (name == fi::to_string(fi::Outcome::kNotInjected)) {
    return fi::Outcome::kNotInjected;
  }
  throw std::runtime_error("fabric: unknown outcome name '" + name + "'");
}

// phicheck:ndjson-writer(stats.worker) out
// phicheck:ndjson-writer(stats.estimator_cell) cell
std::string encode_stats(const WorkerStats& stats) {
  Value out = Value::object();
  out["executed"] = stats.executed;
  out["leases_done"] = stats.leases_done;
  out["masked"] = stats.masked;
  out["sdc"] = stats.sdc;
  out["due"] = stats.due;
  out["not_injected"] = stats.not_injected;
  out["trials_per_sec"] = stats.trials_per_sec;
  out["uptime_seconds"] = stats.uptime_seconds;
  Value kinds = Value::object();
  for (const auto& [kind, count] : stats.due_kinds) {
    if (count > 0) kinds[kind] = count;
  }
  out["due_kinds"] = std::move(kinds);
  Value estimator = counts_to_json(stats.estimator.overall);
  Value cells = Value::array();
  for (const auto& [key, counts] : stats.estimator.cells) {
    Value cell = counts_to_json(counts);
    cell["model"] = key.model;
    cell["window"] = key.window;
    cell["category"] = key.category;
    cells.push_back(std::move(cell));
  }
  estimator["cells"] = std::move(cells);
  out["estimator"] = std::move(estimator);
  if (stats.profile.trials() > 0) {
    out["profile"] = telemetry::profile_snapshot_to_json(stats.profile);
  }
  return out.dump();
}

WorkerStats decode_stats(const std::string& text) {
  const Value parsed = util::json::parse(text);
  if (!parsed.is_object()) {
    throw std::runtime_error("fabric: stats payload is not a JSON object");
  }
  WorkerStats stats;
  stats.executed = u64_or(parsed, "executed");
  stats.leases_done = u64_or(parsed, "leases_done");
  stats.masked = u64_or(parsed, "masked");
  stats.sdc = u64_or(parsed, "sdc");
  stats.due = u64_or(parsed, "due");
  stats.not_injected = u64_or(parsed, "not_injected");
  stats.trials_per_sec = parsed.number_or("trials_per_sec", 0.0);
  stats.uptime_seconds = parsed.number_or("uptime_seconds", 0.0);
  if (const Value* kinds = parsed.find("due_kinds");
      kinds != nullptr && kinds->is_object()) {
    for (const auto& [kind, count] : kinds->as_object()) {
      stats.due_kinds[kind] = static_cast<std::uint64_t>(count.as_double());
    }
  }
  if (const Value* estimator = parsed.find("estimator");
      estimator != nullptr && estimator->is_object()) {
    stats.estimator.overall = counts_from_json(*estimator);
    if (const Value* cells = estimator->find("cells");
        cells != nullptr && cells->is_array()) {
      for (const Value& cell : cells->as_array()) {
        telemetry::EstimatorCellKey key;
        key.model = cell.string_or("model", "");
        key.window = static_cast<unsigned>(cell.number_or("window", 0.0));
        key.category = cell.string_or("category", "");
        stats.estimator.cells.emplace_back(std::move(key),
                                           counts_from_json(cell));
      }
    }
  }
  if (const Value* profile = parsed.find("profile");
      profile != nullptr && profile->is_object()) {
    stats.profile = telemetry::profile_snapshot_from_json(*profile);
  }
  return stats;
}

}  // namespace phifi::fabric

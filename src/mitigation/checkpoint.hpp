// Checkpoint/restart harness (Sec. 6's discussion of checkpoint frequency).
//
// The paper argues that lowering the DUE rate of critical portions (CLAMR's
// Sort/Tree) lets HPC systems checkpoint less often. This in-memory
// checkpointer snapshots registered state regions and restores them after a
// detected error; the mitigation-ablation bench uses it to quantify that
// checkpoint-interval trade-off.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace phifi::mitigation {

class CheckpointManager {
 public:
  /// Registers a live state region. Pointers must outlive the manager.
  void register_region(std::string name, std::span<std::byte> region) {
    regions_.push_back({std::move(name), region});
    storage_.emplace_back(region.size());
  }

  template <typename T>
  void register_array(std::string name, std::span<T> values) {
    register_region(std::move(name),
                    {reinterpret_cast<std::byte*>(values.data()),
                     values.size() * sizeof(T)});
  }

  /// Copies all regions into the checkpoint store.
  void save() {
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      std::memcpy(storage_[i].data(), regions_[i].region.data(),
                  regions_[i].region.size());
    }
    ++saves_;
  }

  /// Restores all regions from the last save(). No-op if never saved.
  void restore() {
    if (saves_ == 0) return;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      std::memcpy(regions_[i].region.data(), storage_[i].data(),
                  regions_[i].region.size());
    }
    ++restores_;
  }

  [[nodiscard]] std::size_t saves() const { return saves_; }
  [[nodiscard]] std::size_t restores() const { return restores_; }
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& r : regions_) total += r.region.size();
    return total;
  }

 private:
  struct Region {
    std::string name;
    std::span<std::byte> region;
  };
  std::vector<Region> regions_;
  std::vector<std::vector<std::byte>> storage_;
  std::size_t saves_ = 0;
  std::size_t restores_ = 0;
};

}  // namespace phifi::mitigation

#include "mitigation/rmt.hpp"

namespace phifi::mitigation {

RmtReport run_duplicated(std::span<std::byte> output,
                         const std::function<void()>& kernel) {
  RmtReport report;
  kernel();
  std::vector<std::byte> first(output.begin(), output.end());
  kernel();
  report.runs = 2;
  report.mismatch_detected =
      std::memcmp(first.data(), output.data(), output.size()) != 0;
  return report;
}

RmtReport run_triplicated(std::span<std::byte> output,
                          const std::function<void()>& kernel) {
  RmtReport report;
  kernel();
  std::vector<std::byte> first(output.begin(), output.end());
  kernel();
  report.runs = 2;
  if (std::memcmp(first.data(), output.data(), output.size()) == 0) {
    return report;  // agreement, no third run needed
  }
  report.mismatch_detected = true;
  std::vector<std::byte> second(output.begin(), output.end());
  kernel();
  report.runs = 3;
  if (std::memcmp(first.data(), output.data(), output.size()) == 0 ||
      std::memcmp(second.data(), output.data(), output.size()) == 0) {
    report.corrected = true;  // third run broke the tie; output holds it
    return report;
  }
  // Three distinct results: vote byte-wise as a last resort.
  bool any_vote = false;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (first[i] == second[i] && first[i] != output[i]) {
      output[i] = first[i];
      any_vote = true;
    }
  }
  report.corrected = any_vote;
  return report;
}

}  // namespace phifi::mitigation

#include "mitigation/abft.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace phifi::mitigation {

AbftGemm::AbftGemm(std::span<const double> a, std::span<const double> b,
                   std::size_t n)
    : n_(n), expected_row_sums_(n, 0.0), expected_col_sums_(n, 0.0) {
  assert(a.size() >= n * n && b.size() >= n * n);
  // col_sum_b[k] = sum_j B[k][j];  expected_row_sums[i] = sum_k A[i][k] *
  // col_sum_b[k]  (= sum_j C[i][j]).
  std::vector<double> col_sum_b(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += b[k * n + j];
    col_sum_b[k] = sum;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) sum += a[i * n + k] * col_sum_b[k];
    expected_row_sums_[i] = sum;
    scale_ = std::max(scale_, std::fabs(sum));
  }
  // row_sum_a[k] = sum_i A[i][k];  expected_col_sums[j] = sum_k row_sum_a[k]
  // * B[k][j]  (= sum_i C[i][j]).
  std::vector<double> row_sum_a(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) row_sum_a[k] += a[i * n + k];
  }
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) sum += row_sum_a[k] * b[k * n + j];
    expected_col_sums_[j] = sum;
    scale_ = std::max(scale_, std::fabs(sum));
  }
}

AbftReport AbftGemm::check_and_correct(std::span<double> c,
                                       double tolerance) const {
  assert(c.size() >= n_ * n_);
  AbftReport report;
  const double slack = tolerance * std::max(scale_, 1.0);

  auto compute_deltas = [&](std::vector<double>& row_delta,
                            std::vector<double>& col_delta) {
    row_delta.assign(n_, 0.0);
    col_delta.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n_; ++j) sum += c[i * n_ + j];
      row_delta[i] = sum - expected_row_sums_[i];
    }
    for (std::size_t j = 0; j < n_; ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n_; ++i) sum += c[i * n_ + j];
      col_delta[j] = sum - expected_col_sums_[j];
    }
  };

  std::vector<double> row_delta;
  std::vector<double> col_delta;
  compute_deltas(row_delta, col_delta);

  auto bad = [&](const std::vector<double>& deltas) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < n_; ++i) {
      if (std::isnan(deltas[i]) || std::fabs(deltas[i]) > slack) {
        indices.push_back(i);
      }
    }
    return indices;
  };

  std::vector<std::size_t> bad_rows = bad(row_delta);
  std::vector<std::size_t> bad_cols = bad(col_delta);
  report.bad_rows = bad_rows.size();
  report.bad_cols = bad_cols.size();
  if (bad_rows.empty() && bad_cols.empty()) {
    report.consistent = true;
    return report;
  }

  // Non-finite cells cannot be repaired by subtraction of deltas (the sums
  // themselves are poisoned); recompute is the only remedy. Report as
  // detected-uncorrectable.
  bool non_finite = false;
  for (std::size_t r : bad_rows) {
    non_finite |= !std::isfinite(row_delta[r]);
  }
  for (std::size_t cidx : bad_cols) {
    non_finite |= !std::isfinite(col_delta[cidx]);
  }
  if (non_finite) {
    report.uncorrectable = true;
    return report;
  }

  // Line errors: one bad row crossing many bad columns (or transposed).
  // Each wrong cell (r, c) is off by col_delta[c] (resp. row_delta[r]).
  if (bad_rows.size() == 1 && !bad_cols.empty()) {
    const std::size_t r = bad_rows[0];
    for (std::size_t cidx : bad_cols) {
      c[r * n_ + cidx] -= col_delta[cidx];
      ++report.corrected;
    }
  } else if (bad_cols.size() == 1 && !bad_rows.empty()) {
    const std::size_t cc = bad_cols[0];
    for (std::size_t r : bad_rows) {
      c[r * n_ + cc] -= row_delta[r];
      ++report.corrected;
    }
  } else {
    // Scattered errors: greedily pair a bad row with the unique bad column
    // whose delta matches; unpairable residue (e.g. a square block) is
    // uncorrectable.
    bool progress = true;
    while (progress && !bad_rows.empty()) {
      progress = false;
      for (auto row_it = bad_rows.begin(); row_it != bad_rows.end();
           ++row_it) {
        std::size_t matches = 0;
        std::size_t match_col = 0;
        for (std::size_t cidx : bad_cols) {
          if (std::fabs(row_delta[*row_it] - col_delta[cidx]) <= slack) {
            ++matches;
            match_col = cidx;
          }
        }
        if (matches == 1) {
          c[*row_it * n_ + match_col] -= row_delta[*row_it];
          ++report.corrected;
          col_delta[match_col] -= row_delta[*row_it];
          row_delta[*row_it] = 0.0;
          bad_rows.erase(row_it);
          std::erase_if(bad_cols, [&](std::size_t cidx) {
            return std::fabs(col_delta[cidx]) <= slack;
          });
          progress = true;
          break;
        }
      }
    }
  }

  // Re-audit after repair.
  compute_deltas(row_delta, col_delta);
  report.uncorrectable = !bad(row_delta).empty() || !bad(col_delta).empty();
  return report;
}

}  // namespace phifi::mitigation

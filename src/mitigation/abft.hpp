// Algorithm-Based Fault Tolerance for matrix multiplication
// (Huang & Abraham 1984; the experimentally tuned GPU variant of Rech et
// al. 2013 that the paper cites in Sec. 4.3/6.1).
//
// For C = A x B, the row checksum of C must equal A x (B's column-sum
// vector) and the column checksum must equal (A's row-sum vector) x B.
// After the multiply, inconsistent row/column sums locate errors:
//   one bad row  x one bad col          -> single error, corrected in O(1);
//   one bad row  x many bad cols (or
//   transposed)                          -> line error, corrected per cell;
//   several bad rows/cols that pair up   -> scattered ("random") errors,
//                                           corrected greedily;
//   unpairable residue (e.g. square
//   blocks of errors)                    -> detected but not correctable,
// which is exactly the pattern-dependent coverage Fig. 2's discussion
// derives for DGEMM on the Xeon Phi.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace phifi::mitigation {

struct AbftReport {
  bool consistent = false;       ///< checksums matched (no error detected)
  std::size_t corrected = 0;     ///< elements repaired in place
  bool uncorrectable = false;    ///< inconsistency left after correction
  std::size_t bad_rows = 0;
  std::size_t bad_cols = 0;

  [[nodiscard]] bool detected() const { return !consistent; }
};

class AbftGemm {
 public:
  /// Captures the input checksums of an n x n multiply C = A x B.
  /// Cost: two matrix-vector products, O(n^2).
  AbftGemm(std::span<const double> a, std::span<const double> b,
           std::size_t n);

  /// Verifies C against the captured checksums and repairs what the error
  /// pattern allows. `tolerance` is the relative slack for floating-point
  /// checksum comparison.
  AbftReport check_and_correct(std::span<double> c,
                               double tolerance = 1e-6) const;

  [[nodiscard]] std::span<const double> expected_row_sums() const {
    return expected_row_sums_;
  }
  [[nodiscard]] std::span<const double> expected_col_sums() const {
    return expected_col_sums_;
  }
  /// Mutable views for fault-injection site registration: the checksum
  /// vectors are program state too, and corrupting them must have its real
  /// effect (false positives / bad repairs).
  [[nodiscard]] std::span<double> mutable_row_sums() {
    return expected_row_sums_;
  }
  [[nodiscard]] std::span<double> mutable_col_sums() {
    return expected_col_sums_;
  }

 private:
  std::size_t n_;
  std::vector<double> expected_row_sums_;  // sum over j of C[i][j]
  std::vector<double> expected_col_sums_;  // sum over i of C[i][j]
  double scale_ = 1.0;  ///< magnitude scale for tolerance comparisons
};

}  // namespace phifi::mitigation

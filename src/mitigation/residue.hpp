// Residue codes (Sec. 6.1): low-cost arithmetic error detection.
//
// A residue code stores r = x mod M alongside x (x taken as its 64-bit
// two's-complement bit pattern). Because addition and multiplication
// commute with "mod M" — up to a wraparound correction that is itself
// computable mod M — the residue of a result can be predicted from the
// operand residues and compared with the residue of the stored result. A
// mismatch means the ALU or the stored value was corrupted. With M = 3
// (2 check bits) or M = 15 (4 check bits), every single-bit flip of the
// value is detectable because 2^k mod 3 in {1,2} and 2^k mod 15 in
// {1,2,4,8} are never zero. ECC on memory arrays cannot catch faults in
// the arithmetic itself; residue checking can, which is why the paper
// recommends it for algebraic codes (DGEMM/LUD) and NW.
//
// Both supported moduli divide 2^64 - 1, so 2^64 ≡ 1 (mod M) and the
// wraparound corrections below are exact.
#pragma once

#include <cstdint>

namespace phifi::mitigation {

/// Residue of the two's-complement bit pattern of `value` modulo M.
template <std::uint32_t M>
constexpr std::uint32_t residue_of(std::int64_t value) {
  static_assert(M == 3 || M == 15, "wraparound math assumes M | 2^64 - 1");
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(value) % M);
}

/// An integer carrying its residue check. Arithmetic updates the residue
/// through the residue algebra (NOT by recomputing it from the value), so a
/// corrupted value and its residue disagree until verify() is called.
template <std::uint32_t M>
class ResidueChecked {
 public:
  ResidueChecked() : ResidueChecked(0) {}
  explicit ResidueChecked(std::int64_t value)
      : value_(value), residue_(residue_of<M>(value)) {}

  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] std::uint32_t residue() const { return residue_; }

  /// True if the stored value still matches its residue.
  [[nodiscard]] bool verify() const {
    return residue_of<M>(value_) == residue_;
  }

  ResidueChecked& operator+=(const ResidueChecked& other) {
    const auto ua = static_cast<std::uint64_t>(value_);
    const auto ub = static_cast<std::uint64_t>(other.value_);
    const std::uint64_t sum = ua + ub;
    const std::uint32_t carry = sum < ua ? 1 : 0;  // wrapped past 2^64
    value_ = static_cast<std::int64_t>(sum);
    // (ua+ub) - carry*2^64 ≡ ra + rb - carry (mod M) since 2^64 ≡ 1.
    residue_ = (residue_ + other.residue_ + (M - carry)) % M;
    return *this;
  }

  ResidueChecked& operator*=(const ResidueChecked& other) {
    const auto ua = static_cast<std::uint64_t>(value_);
    const auto ub = static_cast<std::uint64_t>(other.value_);
    const __uint128_t product = static_cast<__uint128_t>(ua) * ub;
    const auto high = static_cast<std::uint64_t>(product >> 64);
    value_ = static_cast<std::int64_t>(static_cast<std::uint64_t>(product));
    // low = P - high*2^64 ≡ ra*rb - high (mod M).
    const std::uint32_t predicted =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(residue_) *
                                        other.residue_ +
                                    static_cast<std::uint64_t>(M) * M -
                                    high % M) %
                                   M);
    residue_ = predicted;
    return *this;
  }

  friend ResidueChecked operator+(ResidueChecked a, const ResidueChecked& b) {
    a += b;
    return a;
  }
  friend ResidueChecked operator*(ResidueChecked a, const ResidueChecked& b) {
    a *= b;
    return a;
  }

  /// Direct access for fault injection in tests: corrupting the value
  /// without touching the residue models a data fault; the reverse models a
  /// check-bit fault.
  std::int64_t& raw_value() { return value_; }
  std::uint32_t& raw_residue() { return residue_; }

 private:
  std::int64_t value_;
  std::uint32_t residue_;
};

using ResidueMod3 = ResidueChecked<3>;
using ResidueMod15 = ResidueChecked<15>;

}  // namespace phifi::mitigation

// Selective variable hardening: duplication-with-comparison and TMR.
//
// Sec. 6's recommendation for the replicated loop-control variables and
// read-only constants: keep two (or three) copies and compare on every
// read. A mismatch is a *detected* error — the caller turns it into a
// clean abort (DUE instead of SDC) for DWC, while TMR's majority vote
// *corrects* it. Overhead is a few bytes and one compare per read, which
// is why the paper prefers this over blanket replication.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>

namespace phifi::mitigation {

/// Thrown when a duplicated variable's copies disagree.
class DwcMismatch : public std::runtime_error {
 public:
  DwcMismatch() : std::runtime_error("DWC: duplicated copies disagree") {}
};

/// Two copies, compared on read. Copies are deliberately stored with one
/// complemented so a fault that hits "the same bit of both copies" (one
/// physical line feeding both) still trips the compare.
template <typename T>
class Duplicated {
  static_assert(std::is_integral_v<T>,
                "Duplicated stores a complemented shadow; integral types "
                "only (wrap floats through their bit pattern)");

 public:
  Duplicated() : Duplicated(T{}) {}
  explicit Duplicated(T value) { set(value); }

  void set(T value) {
    primary_ = value;
    shadow_ = ~static_cast<std::uint64_t>(value);
  }

  /// Returns the value; throws DwcMismatch if the copies disagree.
  [[nodiscard]] T get() const {
    const T mirrored = static_cast<T>(~shadow_);
    if (primary_ != mirrored) throw DwcMismatch();
    return primary_;
  }

  /// Non-throwing check.
  [[nodiscard]] bool consistent() const {
    return primary_ == static_cast<T>(~shadow_);
  }

  /// Fault-injection hooks for tests.
  T& raw_primary() { return primary_; }
  std::uint64_t& raw_shadow() { return shadow_; }

 private:
  T primary_;
  std::uint64_t shadow_;
};

/// Three copies with majority vote: corrects any single corrupted copy.
template <typename T>
class Tmr {
 public:
  Tmr() : Tmr(T{}) {}
  explicit Tmr(T value) { set(value); }

  void set(T value) {
    copies_[0] = value;
    copies_[1] = value;
    copies_[2] = value;
  }

  /// Majority vote; also repairs the odd copy out. Throws if all three
  /// disagree (uncorrectable).
  T get() {
    if (copies_[0] == copies_[1]) {
      copies_[2] = copies_[0];
      return copies_[0];
    }
    if (copies_[0] == copies_[2]) {
      copies_[1] = copies_[0];
      return copies_[0];
    }
    if (copies_[1] == copies_[2]) {
      copies_[0] = copies_[1];
      return copies_[1];
    }
    throw DwcMismatch();
  }

  T& raw_copy(int i) { return copies_[i]; }

 private:
  T copies_[3];
};

}  // namespace phifi::mitigation

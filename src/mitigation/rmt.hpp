// Redundant multithreading / redundant execution (Sec. 6).
//
// The general-purpose hammer the paper reserves for portions too large to
// duplicate selectively (LavaMD): run the computation twice and compare
// (detection: a mismatch becomes a clean re-run or abort instead of an
// SDC), or three times with a vote (correction). The harness compares raw
// output bytes, so it works for any kernel that writes a buffer.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

namespace phifi::mitigation {

struct RmtReport {
  bool mismatch_detected = false;
  bool corrected = false;   ///< triple mode: majority restored the output
  int runs = 0;
};

/// Runs `kernel` twice; the kernel must (re)compute its full result into
/// `output` on each call. Returns whether the two runs agreed; on
/// disagreement `output` holds the second run's bytes.
RmtReport run_duplicated(std::span<std::byte> output,
                         const std::function<void()>& kernel);

/// Runs `kernel` up to three times and votes byte-wise. If two runs agree,
/// output is left holding the agreed bytes.
RmtReport run_triplicated(std::span<std::byte> output,
                          const std::function<void()>& kernel);

}  // namespace phifi::mitigation

file(REMOVE_RECURSE
  "CMakeFiles/phifi_run.dir/phifi_run.cpp.o"
  "CMakeFiles/phifi_run.dir/phifi_run.cpp.o.d"
  "phifi_run"
  "phifi_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for phifi_run.
# This may be replaced when dependencies are built.

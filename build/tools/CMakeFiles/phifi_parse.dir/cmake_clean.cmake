file(REMOVE_RECURSE
  "CMakeFiles/phifi_parse.dir/phifi_parse.cpp.o"
  "CMakeFiles/phifi_parse.dir/phifi_parse.cpp.o.d"
  "phifi_parse"
  "phifi_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

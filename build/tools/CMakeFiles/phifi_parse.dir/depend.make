# Empty dependencies file for phifi_parse.
# This may be replaced when dependencies are built.

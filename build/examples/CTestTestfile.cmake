# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "30")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_criticality_report "/root/repo/build/examples/criticality_report" "LUD" "40")
set_tests_properties(example_criticality_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_beam_experiment "/root/repo/build/examples/beam_experiment" "DGEMM" "10")
set_tests_properties(example_beam_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_abft_hardening "/root/repo/build/examples/abft_hardening" "24")
set_tests_properties(example_abft_hardening PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/beam_experiment.dir/beam_experiment.cpp.o"
  "CMakeFiles/beam_experiment.dir/beam_experiment.cpp.o.d"
  "beam_experiment"
  "beam_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

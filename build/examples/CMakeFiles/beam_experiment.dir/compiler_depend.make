# Empty compiler generated dependencies file for beam_experiment.
# This may be replaced when dependencies are built.

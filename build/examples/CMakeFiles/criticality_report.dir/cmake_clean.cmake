file(REMOVE_RECURSE
  "CMakeFiles/criticality_report.dir/criticality_report.cpp.o"
  "CMakeFiles/criticality_report.dir/criticality_report.cpp.o.d"
  "criticality_report"
  "criticality_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criticality_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

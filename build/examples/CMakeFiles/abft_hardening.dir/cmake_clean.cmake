file(REMOVE_RECURSE
  "CMakeFiles/abft_hardening.dir/abft_hardening.cpp.o"
  "CMakeFiles/abft_hardening.dir/abft_hardening.cpp.o.d"
  "abft_hardening"
  "abft_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abft_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abft_hardening.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for micro_workloads.
# This may be replaced when dependencies are built.

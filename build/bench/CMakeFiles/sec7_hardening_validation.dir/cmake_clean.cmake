file(REMOVE_RECURSE
  "CMakeFiles/sec7_hardening_validation.dir/sec7_hardening_validation.cpp.o"
  "CMakeFiles/sec7_hardening_validation.dir/sec7_hardening_validation.cpp.o.d"
  "sec7_hardening_validation"
  "sec7_hardening_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_hardening_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec7_hardening_validation.
# This may be replaced when dependencies are built.

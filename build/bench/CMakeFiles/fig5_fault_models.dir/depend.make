# Empty dependencies file for fig5_fault_models.
# This may be replaced when dependencies are built.

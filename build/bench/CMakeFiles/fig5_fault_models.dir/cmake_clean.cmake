file(REMOVE_RECURSE
  "CMakeFiles/fig5_fault_models.dir/fig5_fault_models.cpp.o"
  "CMakeFiles/fig5_fault_models.dir/fig5_fault_models.cpp.o.d"
  "fig5_fault_models"
  "fig5_fault_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fault_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

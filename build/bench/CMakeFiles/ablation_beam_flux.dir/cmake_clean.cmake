file(REMOVE_RECURSE
  "CMakeFiles/ablation_beam_flux.dir/ablation_beam_flux.cpp.o"
  "CMakeFiles/ablation_beam_flux.dir/ablation_beam_flux.cpp.o.d"
  "ablation_beam_flux"
  "ablation_beam_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_beam_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

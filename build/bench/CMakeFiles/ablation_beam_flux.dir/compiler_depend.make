# Empty compiler generated dependencies file for ablation_beam_flux.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_windows.dir/fig6_time_windows.cpp.o"
  "CMakeFiles/fig6_time_windows.dir/fig6_time_windows.cpp.o.d"
  "fig6_time_windows"
  "fig6_time_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

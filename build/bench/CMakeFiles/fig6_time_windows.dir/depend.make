# Empty dependencies file for fig6_time_windows.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig4_outcomes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_outcomes.dir/fig4_outcomes.cpp.o"
  "CMakeFiles/fig4_outcomes.dir/fig4_outcomes.cpp.o.d"
  "fig4_outcomes"
  "fig4_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

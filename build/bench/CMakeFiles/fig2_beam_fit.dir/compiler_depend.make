# Empty compiler generated dependencies file for fig2_beam_fit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_beam_fit.dir/fig2_beam_fit.cpp.o"
  "CMakeFiles/fig2_beam_fit.dir/fig2_beam_fit.cpp.o.d"
  "fig2_beam_fit"
  "fig2_beam_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_beam_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

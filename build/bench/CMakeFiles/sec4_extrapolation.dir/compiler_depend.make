# Empty compiler generated dependencies file for sec4_extrapolation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec4_extrapolation.dir/sec4_extrapolation.cpp.o"
  "CMakeFiles/sec4_extrapolation.dir/sec4_extrapolation.cpp.o.d"
  "sec4_extrapolation"
  "sec4_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sec6_checkpoint_interval.dir/sec6_checkpoint_interval.cpp.o"
  "CMakeFiles/sec6_checkpoint_interval.dir/sec6_checkpoint_interval.cpp.o.d"
  "sec6_checkpoint_interval"
  "sec6_checkpoint_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_checkpoint_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

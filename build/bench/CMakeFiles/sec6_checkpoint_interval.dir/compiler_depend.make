# Empty compiler generated dependencies file for sec6_checkpoint_interval.
# This may be replaced when dependencies are built.

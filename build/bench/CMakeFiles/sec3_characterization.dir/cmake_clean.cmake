file(REMOVE_RECURSE
  "CMakeFiles/sec3_characterization.dir/sec3_characterization.cpp.o"
  "CMakeFiles/sec3_characterization.dir/sec3_characterization.cpp.o.d"
  "sec3_characterization"
  "sec3_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sec3_characterization.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig3_tolerance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_tolerance.dir/fig3_tolerance.cpp.o"
  "CMakeFiles/fig3_tolerance.dir/fig3_tolerance.cpp.o.d"
  "fig3_tolerance"
  "fig3_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

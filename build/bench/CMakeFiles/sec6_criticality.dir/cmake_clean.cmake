file(REMOVE_RECURSE
  "CMakeFiles/sec6_criticality.dir/sec6_criticality.cpp.o"
  "CMakeFiles/sec6_criticality.dir/sec6_criticality.cpp.o.d"
  "sec6_criticality"
  "sec6_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

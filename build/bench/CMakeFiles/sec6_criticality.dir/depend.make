# Empty dependencies file for sec6_criticality.
# This may be replaced when dependencies are built.

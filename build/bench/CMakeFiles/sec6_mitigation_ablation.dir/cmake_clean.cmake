file(REMOVE_RECURSE
  "CMakeFiles/sec6_mitigation_ablation.dir/sec6_mitigation_ablation.cpp.o"
  "CMakeFiles/sec6_mitigation_ablation.dir/sec6_mitigation_ablation.cpp.o.d"
  "sec6_mitigation_ablation"
  "sec6_mitigation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_mitigation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

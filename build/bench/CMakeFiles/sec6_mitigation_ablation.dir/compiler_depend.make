# Empty compiler generated dependencies file for sec6_mitigation_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libphifi_cli.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/phifi_cli.dir/config.cpp.o"
  "CMakeFiles/phifi_cli.dir/config.cpp.o.d"
  "CMakeFiles/phifi_cli.dir/runner.cpp.o"
  "CMakeFiles/phifi_cli.dir/runner.cpp.o.d"
  "libphifi_cli.a"
  "libphifi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

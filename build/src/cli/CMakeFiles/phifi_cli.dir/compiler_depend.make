# Empty compiler generated dependencies file for phifi_cli.
# This may be replaced when dependencies are built.

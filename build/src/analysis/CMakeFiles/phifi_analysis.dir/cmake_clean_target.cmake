file(REMOVE_RECURSE
  "libphifi_analysis.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/phifi_analysis.dir/checkpoint_model.cpp.o"
  "CMakeFiles/phifi_analysis.dir/checkpoint_model.cpp.o.d"
  "CMakeFiles/phifi_analysis.dir/compare.cpp.o"
  "CMakeFiles/phifi_analysis.dir/compare.cpp.o.d"
  "CMakeFiles/phifi_analysis.dir/criticality.cpp.o"
  "CMakeFiles/phifi_analysis.dir/criticality.cpp.o.d"
  "CMakeFiles/phifi_analysis.dir/fit.cpp.o"
  "CMakeFiles/phifi_analysis.dir/fit.cpp.o.d"
  "CMakeFiles/phifi_analysis.dir/planning.cpp.o"
  "CMakeFiles/phifi_analysis.dir/planning.cpp.o.d"
  "CMakeFiles/phifi_analysis.dir/sdc_analyzer.cpp.o"
  "CMakeFiles/phifi_analysis.dir/sdc_analyzer.cpp.o.d"
  "CMakeFiles/phifi_analysis.dir/spatial.cpp.o"
  "CMakeFiles/phifi_analysis.dir/spatial.cpp.o.d"
  "CMakeFiles/phifi_analysis.dir/tolerance.cpp.o"
  "CMakeFiles/phifi_analysis.dir/tolerance.cpp.o.d"
  "libphifi_analysis.a"
  "libphifi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

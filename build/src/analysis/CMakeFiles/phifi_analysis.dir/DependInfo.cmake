
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/checkpoint_model.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/checkpoint_model.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/checkpoint_model.cpp.o.d"
  "/root/repo/src/analysis/compare.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/compare.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/compare.cpp.o.d"
  "/root/repo/src/analysis/criticality.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/criticality.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/criticality.cpp.o.d"
  "/root/repo/src/analysis/fit.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/fit.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/fit.cpp.o.d"
  "/root/repo/src/analysis/planning.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/planning.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/planning.cpp.o.d"
  "/root/repo/src/analysis/sdc_analyzer.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/sdc_analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/sdc_analyzer.cpp.o.d"
  "/root/repo/src/analysis/spatial.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/spatial.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/spatial.cpp.o.d"
  "/root/repo/src/analysis/tolerance.cpp" "src/analysis/CMakeFiles/phifi_analysis.dir/tolerance.cpp.o" "gcc" "src/analysis/CMakeFiles/phifi_analysis.dir/tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/phifi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phifi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phi/CMakeFiles/phifi_phi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

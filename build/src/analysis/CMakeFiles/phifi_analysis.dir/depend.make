# Empty dependencies file for phifi_analysis.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phi/device.cpp" "src/phi/CMakeFiles/phifi_phi.dir/device.cpp.o" "gcc" "src/phi/CMakeFiles/phifi_phi.dir/device.cpp.o.d"
  "/root/repo/src/phi/device_spec.cpp" "src/phi/CMakeFiles/phifi_phi.dir/device_spec.cpp.o" "gcc" "src/phi/CMakeFiles/phifi_phi.dir/device_spec.cpp.o.d"
  "/root/repo/src/phi/resource_map.cpp" "src/phi/CMakeFiles/phifi_phi.dir/resource_map.cpp.o" "gcc" "src/phi/CMakeFiles/phifi_phi.dir/resource_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phifi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/phifi_phi.dir/device.cpp.o"
  "CMakeFiles/phifi_phi.dir/device.cpp.o.d"
  "CMakeFiles/phifi_phi.dir/device_spec.cpp.o"
  "CMakeFiles/phifi_phi.dir/device_spec.cpp.o.d"
  "CMakeFiles/phifi_phi.dir/resource_map.cpp.o"
  "CMakeFiles/phifi_phi.dir/resource_map.cpp.o.d"
  "libphifi_phi.a"
  "libphifi_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for phifi_phi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libphifi_phi.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/clamr/amr_mesh.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr/amr_mesh.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr/amr_mesh.cpp.o.d"
  "/root/repo/src/workloads/clamr/cell_sort.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr/cell_sort.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr/cell_sort.cpp.o.d"
  "/root/repo/src/workloads/clamr/quadtree.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr/quadtree.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr/quadtree.cpp.o.d"
  "/root/repo/src/workloads/clamr_workload.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr_workload.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/clamr_workload.cpp.o.d"
  "/root/repo/src/workloads/dgemm.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/dgemm.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/dgemm.cpp.o.d"
  "/root/repo/src/workloads/hardened.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/hardened.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/hardened.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/lavamd.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/lavamd.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/lavamd.cpp.o.d"
  "/root/repo/src/workloads/lud.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/lud.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/lud.cpp.o.d"
  "/root/repo/src/workloads/nw.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/nw.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/nw.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/phifi_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/phifi_workloads.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/phifi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phi/CMakeFiles/phifi_phi.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/phifi_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phifi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/phifi_workloads.dir/clamr/amr_mesh.cpp.o"
  "CMakeFiles/phifi_workloads.dir/clamr/amr_mesh.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/clamr/cell_sort.cpp.o"
  "CMakeFiles/phifi_workloads.dir/clamr/cell_sort.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/clamr/quadtree.cpp.o"
  "CMakeFiles/phifi_workloads.dir/clamr/quadtree.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/clamr_workload.cpp.o"
  "CMakeFiles/phifi_workloads.dir/clamr_workload.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/dgemm.cpp.o"
  "CMakeFiles/phifi_workloads.dir/dgemm.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/hardened.cpp.o"
  "CMakeFiles/phifi_workloads.dir/hardened.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/phifi_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/lavamd.cpp.o"
  "CMakeFiles/phifi_workloads.dir/lavamd.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/lud.cpp.o"
  "CMakeFiles/phifi_workloads.dir/lud.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/nw.cpp.o"
  "CMakeFiles/phifi_workloads.dir/nw.cpp.o.d"
  "CMakeFiles/phifi_workloads.dir/registry.cpp.o"
  "CMakeFiles/phifi_workloads.dir/registry.cpp.o.d"
  "libphifi_workloads.a"
  "libphifi_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

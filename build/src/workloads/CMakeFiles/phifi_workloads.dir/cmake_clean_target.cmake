file(REMOVE_RECURSE
  "libphifi_workloads.a"
)

# Empty compiler generated dependencies file for phifi_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/phifi_radiation.dir/beam_campaign.cpp.o"
  "CMakeFiles/phifi_radiation.dir/beam_campaign.cpp.o.d"
  "CMakeFiles/phifi_radiation.dir/sensitivity.cpp.o"
  "CMakeFiles/phifi_radiation.dir/sensitivity.cpp.o.d"
  "libphifi_radiation.a"
  "libphifi_radiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_radiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for phifi_radiation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libphifi_radiation.a"
)

# Empty dependencies file for phifi_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/phifi_core.dir/campaign.cpp.o"
  "CMakeFiles/phifi_core.dir/campaign.cpp.o.d"
  "CMakeFiles/phifi_core.dir/fault_model.cpp.o"
  "CMakeFiles/phifi_core.dir/fault_model.cpp.o.d"
  "CMakeFiles/phifi_core.dir/flip_engine.cpp.o"
  "CMakeFiles/phifi_core.dir/flip_engine.cpp.o.d"
  "CMakeFiles/phifi_core.dir/injection_site.cpp.o"
  "CMakeFiles/phifi_core.dir/injection_site.cpp.o.d"
  "CMakeFiles/phifi_core.dir/shared_channel.cpp.o"
  "CMakeFiles/phifi_core.dir/shared_channel.cpp.o.d"
  "CMakeFiles/phifi_core.dir/supervisor.cpp.o"
  "CMakeFiles/phifi_core.dir/supervisor.cpp.o.d"
  "CMakeFiles/phifi_core.dir/trial_log.cpp.o"
  "CMakeFiles/phifi_core.dir/trial_log.cpp.o.d"
  "libphifi_core.a"
  "libphifi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libphifi_core.a"
)

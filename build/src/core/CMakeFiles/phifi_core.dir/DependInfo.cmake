
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/phifi_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/phifi_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/fault_model.cpp" "src/core/CMakeFiles/phifi_core.dir/fault_model.cpp.o" "gcc" "src/core/CMakeFiles/phifi_core.dir/fault_model.cpp.o.d"
  "/root/repo/src/core/flip_engine.cpp" "src/core/CMakeFiles/phifi_core.dir/flip_engine.cpp.o" "gcc" "src/core/CMakeFiles/phifi_core.dir/flip_engine.cpp.o.d"
  "/root/repo/src/core/injection_site.cpp" "src/core/CMakeFiles/phifi_core.dir/injection_site.cpp.o" "gcc" "src/core/CMakeFiles/phifi_core.dir/injection_site.cpp.o.d"
  "/root/repo/src/core/shared_channel.cpp" "src/core/CMakeFiles/phifi_core.dir/shared_channel.cpp.o" "gcc" "src/core/CMakeFiles/phifi_core.dir/shared_channel.cpp.o.d"
  "/root/repo/src/core/supervisor.cpp" "src/core/CMakeFiles/phifi_core.dir/supervisor.cpp.o" "gcc" "src/core/CMakeFiles/phifi_core.dir/supervisor.cpp.o.d"
  "/root/repo/src/core/trial_log.cpp" "src/core/CMakeFiles/phifi_core.dir/trial_log.cpp.o" "gcc" "src/core/CMakeFiles/phifi_core.dir/trial_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phifi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phi/CMakeFiles/phifi_phi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

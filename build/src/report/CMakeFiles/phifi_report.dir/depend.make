# Empty dependencies file for phifi_report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libphifi_report.a"
)

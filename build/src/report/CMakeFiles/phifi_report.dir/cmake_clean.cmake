file(REMOVE_RECURSE
  "CMakeFiles/phifi_report.dir/report.cpp.o"
  "CMakeFiles/phifi_report.dir/report.cpp.o.d"
  "libphifi_report.a"
  "libphifi_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

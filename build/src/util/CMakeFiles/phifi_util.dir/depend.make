# Empty dependencies file for phifi_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libphifi_util.a"
)

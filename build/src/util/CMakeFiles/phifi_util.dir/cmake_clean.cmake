file(REMOVE_RECURSE
  "CMakeFiles/phifi_util.dir/log.cpp.o"
  "CMakeFiles/phifi_util.dir/log.cpp.o.d"
  "CMakeFiles/phifi_util.dir/rng.cpp.o"
  "CMakeFiles/phifi_util.dir/rng.cpp.o.d"
  "CMakeFiles/phifi_util.dir/statistics.cpp.o"
  "CMakeFiles/phifi_util.dir/statistics.cpp.o.d"
  "CMakeFiles/phifi_util.dir/table.cpp.o"
  "CMakeFiles/phifi_util.dir/table.cpp.o.d"
  "libphifi_util.a"
  "libphifi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/phifi_mitigation.dir/abft.cpp.o"
  "CMakeFiles/phifi_mitigation.dir/abft.cpp.o.d"
  "CMakeFiles/phifi_mitigation.dir/rmt.cpp.o"
  "CMakeFiles/phifi_mitigation.dir/rmt.cpp.o.d"
  "libphifi_mitigation.a"
  "libphifi_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phifi_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libphifi_mitigation.a"
)

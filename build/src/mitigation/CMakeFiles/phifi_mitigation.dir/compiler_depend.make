# Empty compiler generated dependencies file for phifi_mitigation.
# This may be replaced when dependencies are built.

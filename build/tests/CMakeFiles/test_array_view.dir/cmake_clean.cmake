file(REMOVE_RECURSE
  "CMakeFiles/test_array_view.dir/test_array_view.cpp.o"
  "CMakeFiles/test_array_view.dir/test_array_view.cpp.o.d"
  "test_array_view"
  "test_array_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_array_view.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sdc_analyzer.dir/test_sdc_analyzer.cpp.o"
  "CMakeFiles/test_sdc_analyzer.dir/test_sdc_analyzer.cpp.o.d"
  "test_sdc_analyzer"
  "test_sdc_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdc_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

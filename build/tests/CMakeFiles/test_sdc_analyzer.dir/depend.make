# Empty dependencies file for test_sdc_analyzer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_trial_log.dir/test_trial_log.cpp.o"
  "CMakeFiles/test_trial_log.dir/test_trial_log.cpp.o.d"
  "test_trial_log"
  "test_trial_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trial_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

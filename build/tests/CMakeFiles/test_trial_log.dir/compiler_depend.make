# Empty compiler generated dependencies file for test_trial_log.
# This may be replaced when dependencies are built.

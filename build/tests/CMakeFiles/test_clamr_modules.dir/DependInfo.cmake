
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_clamr_modules.cpp" "tests/CMakeFiles/test_clamr_modules.dir/test_clamr_modules.cpp.o" "gcc" "tests/CMakeFiles/test_clamr_modules.dir/test_clamr_modules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/phifi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/phifi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phi/CMakeFiles/phifi_phi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phifi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/phifi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/radiation/CMakeFiles/phifi_radiation.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/phifi_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/phifi_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/phifi_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

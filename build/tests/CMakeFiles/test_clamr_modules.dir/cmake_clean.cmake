file(REMOVE_RECURSE
  "CMakeFiles/test_clamr_modules.dir/test_clamr_modules.cpp.o"
  "CMakeFiles/test_clamr_modules.dir/test_clamr_modules.cpp.o.d"
  "test_clamr_modules"
  "test_clamr_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clamr_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_clamr_modules.
# This may be replaced when dependencies are built.

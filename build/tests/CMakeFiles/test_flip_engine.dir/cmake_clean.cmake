file(REMOVE_RECURSE
  "CMakeFiles/test_flip_engine.dir/test_flip_engine.cpp.o"
  "CMakeFiles/test_flip_engine.dir/test_flip_engine.cpp.o.d"
  "test_flip_engine"
  "test_flip_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flip_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_flip_engine.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_radiation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_model.dir/test_checkpoint_model.cpp.o"
  "CMakeFiles/test_checkpoint_model.dir/test_checkpoint_model.cpp.o.d"
  "test_checkpoint_model"
  "test_checkpoint_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

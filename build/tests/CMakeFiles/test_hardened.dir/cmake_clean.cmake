file(REMOVE_RECURSE
  "CMakeFiles/test_hardened.dir/test_hardened.cpp.o"
  "CMakeFiles/test_hardened.dir/test_hardened.cpp.o.d"
  "test_hardened"
  "test_hardened.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardened.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

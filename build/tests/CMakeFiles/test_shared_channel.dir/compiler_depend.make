# Empty compiler generated dependencies file for test_shared_channel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_shared_channel.dir/test_shared_channel.cpp.o"
  "CMakeFiles/test_shared_channel.dir/test_shared_channel.cpp.o.d"
  "test_shared_channel"
  "test_shared_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

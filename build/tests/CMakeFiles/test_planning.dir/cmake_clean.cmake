file(REMOVE_RECURSE
  "CMakeFiles/test_planning.dir/test_planning.cpp.o"
  "CMakeFiles/test_planning.dir/test_planning.cpp.o.d"
  "test_planning"
  "test_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
